//! Bounded exhaustive exploration with delta-normalized state dedup.
//!
//! The explorer walks every protocol-legal command sequence up to the depth
//! bound: from each state, every alphabet command is scheduled at its
//! earliest legal time (`max(now, earliest_issue_ps)`, plus an optional
//! one-clock jitter variant) and followed only if the enumerating checker
//! accepts it there. Each *first-visited* canonical state gets the full
//! property sweep (equivalence probes, liveness bound, refresh
//! schedulability); every *edge* gets the cheap shadow-FSM cross-checks.
//!
//! Dedup keys on the table tracker's
//! [`canonical_key`](easydram_dram::bank::RankTiming::canonical_key): two
//! states with equal fingerprints answer every future legality question
//! identically, so re-expanding the second one can only rediscover known
//! territory. Scheduling is table-driven, so the oracle state reached through
//! a merged path is related to the representative's by the same time
//! translation; a divergence reachable only through the merged path would be
//! a table-indistinguishable divergence, which the representative's probe
//! sweep exposes. (Raw `earliest` values strictly below `now` can differ
//! between merged histories, but scheduling clamps to `max(now, earliest)`,
//! so those differences are behaviorally unobservable — see docs/API.md.)

use std::collections::HashSet;

use easydram_dram::oracle::OracleRankTiming;
use easydram_dram::{bank::RankTiming, DramCommand, TimingTable};

use crate::trace::Step;
use crate::{ModelConfig, Property, Violation};

/// Aggregate counters of one exploration run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExploreStats {
    /// Distinct canonical states visited (after dedup), root included.
    pub states: u64,
    /// Accepted transitions taken (including ones landing on known states).
    pub edges: u64,
    /// Accepted transitions that landed on an already-visited state.
    pub dedup_hits: u64,
    /// Deepest sequence length expanded.
    pub deepest: usize,
    /// Individual `earliest`/`check` probe comparisons performed.
    pub probes: u64,
}

/// Result of one exploration run.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Counters.
    pub stats: ExploreStats,
    /// Distinct violations found, each with a minimized counterexample.
    pub violations: Vec<Violation>,
}

/// Explores the configured state space with the table built straight from
/// `cfg.timing` (the well-formed case; any violation is a real bug).
#[must_use]
pub fn explore(cfg: &ModelConfig) -> ExploreReport {
    explore_with_table(cfg, TimingTable::new(&cfg.timing))
}

/// Explores with a caller-supplied — possibly deliberately corrupted —
/// distance table. The oracle is always built from the pristine
/// `cfg.timing`, so a corrupted table shows up as an equivalence (or
/// safety/liveness/schedulability) violation with a concrete trace.
#[must_use]
pub fn explore_with_table(cfg: &ModelConfig, table: TimingTable) -> ExploreReport {
    let mut ex = Explorer {
        cfg,
        table,
        alphabet: alphabet(cfg),
        horizon: 0,
        visited: HashSet::new(),
        stats: ExploreStats::default(),
        violations: Vec::new(),
    };
    ex.horizon = ex.table.max_distance_ps();
    let root = ex.root();
    let mut key = Vec::new();
    ex.visited.insert(ex.fingerprint(&root, &mut key));
    ex.stats.states = 1;
    let mut elems = Vec::new();
    ex.dfs(&root, &mut elems, 0);
    ExploreReport {
        stats: ex.stats,
        violations: ex.violations,
    }
}

/// The command alphabet for one geometry. Column and row identity never
/// affect timing, so a single column (and `act_rows` rows) covers every
/// timing behaviour; what matters is which *bank* and which *class*.
fn alphabet(cfg: &ModelConfig) -> Vec<DramCommand> {
    let banks = cfg.geometry.banks();
    let rows = cfg.act_rows.max(1).min(cfg.geometry.rows_per_bank);
    let mut a = Vec::new();
    for bank in 0..banks {
        for row in 0..rows {
            a.push(DramCommand::Activate { bank, row });
        }
    }
    for bank in 0..banks {
        a.push(DramCommand::Precharge { bank });
    }
    a.push(DramCommand::PrechargeAll);
    for bank in 0..banks {
        a.push(DramCommand::Read { bank, col: 0 });
    }
    for bank in 0..banks {
        a.push(DramCommand::Write {
            bank,
            col: 0,
            data: [0xA5; 64],
        });
    }
    a.push(DramCommand::Refresh);
    if cfg.with_rfm {
        for bank in 0..banks {
            a.push(DramCommand::RefreshRow { bank, row: 0 });
        }
    }
    a
}

/// Independent shadow state machine the trackers are cross-checked against.
/// Deliberately naive: open-row bookkeeping plus a plain list of accepted
/// ACT times for the four-activate window.
#[derive(Debug, Clone)]
struct Shadow {
    open: Vec<Option<u32>>,
    acts: Vec<u64>,
}

/// One node of the search: both trackers, the shadow, and absolute time.
#[derive(Debug, Clone)]
struct Node {
    table: RankTiming,
    oracle: OracleRankTiming,
    shadow: Shadow,
    now: u64,
}

/// A trace element as stored during search: the command plus how many extra
/// clocks past its earliest legal time it was delayed (0 or 1). Storing the
/// delay rather than the absolute time keeps traces replayable after the
/// minimizer removes elements and every downstream time shifts.
type Elem = (DramCommand, u64);

enum Stepped {
    /// The enumerating checker rejected the command at its scheduled time
    /// (a state-gating rule such as bank-open); not a legal transition.
    Rejected,
    /// The transition itself broke a shadow-FSM invariant.
    Edge(Property, String),
    /// Accepted; the child node and the resolved step.
    Ok(Box<Node>, Step),
}

struct Explorer<'a> {
    cfg: &'a ModelConfig,
    table: TimingTable,
    alphabet: Vec<DramCommand>,
    horizon: u64,
    visited: HashSet<u128>,
    stats: ExploreStats,
    violations: Vec<Violation>,
}

impl Explorer<'_> {
    fn root(&self) -> Node {
        let banks = self.cfg.geometry.banks() as usize;
        Node {
            table: RankTiming::with_table(self.cfg.geometry.clone(), self.table.clone()),
            oracle: OracleRankTiming::new(self.cfg.geometry.clone(), self.cfg.timing.clone()),
            shadow: Shadow {
                open: vec![None; banks],
                acts: Vec::new(),
            },
            now: 0,
        }
    }

    fn stop(&self) -> bool {
        (self.cfg.fail_fast && !self.violations.is_empty())
            || self.violations.len() >= self.cfg.max_violations
    }

    /// Double-FNV fingerprint of a node's canonical key. Only set
    /// *membership* is ever queried, so `HashSet` iteration order cannot
    /// leak into results and the run stays deterministic.
    fn fingerprint(&self, node: &Node, scratch: &mut Vec<u64>) -> u128 {
        scratch.clear();
        node.table.canonical_key(node.now, scratch);
        let mut a: u64 = 0xcbf2_9ce4_8422_2325;
        let mut b: u64 = 0x9e37_79b9_7f4a_7c15;
        for &w in scratch.iter() {
            for byte in w.to_le_bytes() {
                a = (a ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
                b = (b ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_0193);
            }
        }
        (u128::from(a) << 64) | u128::from(b)
    }

    fn dfs(&mut self, node: &Node, elems: &mut Vec<Elem>, depth: usize) {
        if self.stop() {
            return;
        }
        self.stats.deepest = self.stats.deepest.max(depth);
        if self.sweep(node).is_some() {
            self.record(elems.clone());
            if self.stop() {
                return;
            }
        }
        if depth == self.cfg.depth {
            return;
        }
        let delays: &[u64] = if self.cfg.jitter { &[0, 1] } else { &[0] };
        let mut key = Vec::new();
        let mut i = 0;
        while i < self.alphabet.len() {
            let cmd = self.alphabet[i];
            i += 1;
            for &delay in delays {
                match self.try_step(node, &cmd, delay) {
                    Stepped::Rejected => {
                        // Rejection is time-independent state gating; the
                        // delayed variant is rejected for the same reason.
                        break;
                    }
                    Stepped::Edge(..) => {
                        elems.push((cmd, delay));
                        self.record(elems.clone());
                        elems.pop();
                        if self.stop() {
                            return;
                        }
                    }
                    Stepped::Ok(child, _) => {
                        self.stats.edges += 1;
                        let fp = self.fingerprint(&child, &mut key);
                        if self.visited.insert(fp) {
                            self.stats.states += 1;
                            elems.push((cmd, delay));
                            self.dfs(&child, elems, depth + 1);
                            elems.pop();
                            if self.stop() {
                                return;
                            }
                        } else {
                            self.stats.dedup_hits += 1;
                        }
                    }
                }
            }
        }
    }

    /// Attempts one transition: schedule `cmd` at its earliest legal time
    /// plus `delay` clocks, require the enumerating checker to accept it
    /// there, apply it to both trackers and the shadow, and run the
    /// per-edge FSM invariants.
    fn try_step(&self, node: &Node, cmd: &DramCommand, delay: u64) -> Stepped {
        let at = node.now.max(node.table.earliest_issue_ps(cmd)) + delay * self.cfg.timing.t_ck_ps;
        if !node.table.check(cmd, at).is_empty() {
            return Stepped::Rejected;
        }
        // Pre-apply shadow gating: an accepted command must be compatible
        // with the naive FSM's view of bank state.
        let fail = |d: String| Stepped::Edge(Property::FsmSafety, d);
        match *cmd {
            DramCommand::Activate { bank, .. } => {
                if node.shadow.open[bank as usize].is_some() {
                    return fail(format!("accepted {cmd} on an open bank"));
                }
                let t_faw = self.cfg.timing.t_faw_ps;
                let in_window = node.shadow.acts.iter().filter(|&&t| t + t_faw > at).count();
                if in_window >= 4 {
                    return fail(format!(
                        "accepted {cmd} @ {at} is the {}th ACT inside one tFAW window",
                        in_window + 1
                    ));
                }
            }
            DramCommand::Read { bank, .. } | DramCommand::Write { bank, .. } => {
                if node.shadow.open[bank as usize].is_none() {
                    return fail(format!("accepted {cmd} on a closed bank"));
                }
            }
            DramCommand::Refresh => {
                if node.shadow.open.iter().any(Option::is_some) {
                    return fail("accepted REF with open rows".to_owned());
                }
            }
            DramCommand::RefreshRow { bank, .. } => {
                if node.shadow.open[bank as usize].is_some() {
                    return fail(format!("accepted {cmd} on an open bank"));
                }
            }
            DramCommand::Precharge { .. } | DramCommand::PrechargeAll => {}
        }
        let mut child = node.clone();
        child.table.apply(cmd, at);
        child.oracle.apply(cmd, at);
        child.now = at;
        match *cmd {
            DramCommand::Activate { bank, row } => {
                child.shadow.open[bank as usize] = Some(row);
                child.shadow.acts.push(at);
                let t_faw = self.cfg.timing.t_faw_ps;
                child.shadow.acts.retain(|&t| t + t_faw > at);
            }
            DramCommand::Precharge { bank } | DramCommand::RefreshRow { bank, .. } => {
                child.shadow.open[bank as usize] = None;
            }
            DramCommand::PrechargeAll => child.shadow.open.fill(None),
            DramCommand::Read { .. } | DramCommand::Write { .. } | DramCommand::Refresh => {}
        }
        // Post-apply invariants.
        for b in 0..self.cfg.geometry.banks() {
            let (s, t, o) = (
                child.shadow.open[b as usize],
                child.table.open_row(b),
                child.oracle.open_row(b),
            );
            if s != t || s != o {
                return fail(format!(
                    "open-row mismatch on bank {b} after {cmd} @ {at}: shadow {s:?}, table {t:?}, oracle {o:?}"
                ));
            }
        }
        match *cmd {
            DramCommand::RefreshRow { bank, .. } => {
                // Postcondition: the bank is busy for t_rfm — the next ACT
                // on it cannot be earlier than `at + t_rfm`.
                let probe = DramCommand::Activate { bank, row: 0 };
                let e = child.table.earliest_issue_ps(&probe);
                if e < at + self.cfg.timing.t_rfm_ps {
                    return fail(format!(
                        "{cmd} @ {at} left bank {bank} re-activatable at {e}, before at+t_rfm = {}",
                        at + self.cfg.timing.t_rfm_ps
                    ));
                }
            }
            DramCommand::Refresh => {
                // Postcondition: the whole rank is busy for t_rfc.
                for probe in &self.alphabet {
                    let e = child.table.earliest_issue_ps(probe);
                    if e < at + self.cfg.timing.t_rfc_ps {
                        return fail(format!(
                            "REF @ {at} left {probe} issuable at {e}, before at+t_rfc = {}",
                            at + self.cfg.timing.t_rfc_ps
                        ));
                    }
                }
            }
            _ => {}
        }
        Stepped::Ok(
            Box::new(child),
            Step {
                cmd: *cmd,
                at_ps: at,
            },
        )
    }

    /// Full property sweep at a first-visited state. Returns the first
    /// failure as `(property, detail, probe step)`.
    fn sweep(&mut self, node: &Node) -> Option<(Property, String, Step)> {
        let now = node.now;
        let mut i = 0;
        while i < self.alphabet.len() {
            let cmd = self.alphabet[i];
            i += 1;
            let et = node.table.earliest_issue_ps(&cmd);
            let eo = node.oracle.earliest_issue_ps(&cmd);
            self.stats.probes += 1;
            if et != eo {
                return Some((
                    Property::Equivalence,
                    format!("earliest_issue_ps diverged for {cmd}: table {et}, oracle {eo}"),
                    Step {
                        cmd,
                        at_ps: now.max(et),
                    },
                ));
            }
            // Liveness: the earliest legal time is bounded — no constraint
            // can project further than one recorded event offset plus one
            // table distance past `now`.
            if et > now.saturating_add(2 * self.horizon) {
                return Some((
                    Property::Liveness,
                    format!(
                        "earliest_issue_ps for {cmd} escaped the bound: {et} > now {now} + 2x{}",
                        self.horizon
                    ),
                    Step { cmd, at_ps: et },
                ));
            }
            let at = now.max(et);
            let mut probe_times = [now, at, 0];
            let mut n_probes = 2;
            if at > now {
                probe_times[2] = at - 1;
                n_probes = 3;
            }
            for &pt in &probe_times[..n_probes] {
                self.stats.probes += 1;
                let vt = node.table.check(&cmd, pt);
                let vo = node.oracle.check(&cmd, pt);
                if vt != vo {
                    return Some((
                        Property::Equivalence,
                        format!(
                            "violation list diverged for {cmd} @ {pt}: table {vt:?}, oracle {vo:?}"
                        ),
                        Step { cmd, at_ps: pt },
                    ));
                }
                if node.table.is_legal(&cmd, pt) && !vt.is_empty() {
                    return Some((
                        Property::Equivalence,
                        format!("is_legal accepted {cmd} @ {pt} but check flagged {vt:?}"),
                        Step { cmd, at_ps: pt },
                    ));
                }
            }
        }
        // Refresh schedulability: close everything at its earliest, refresh
        // at its earliest, and the refresh must still complete inside the
        // tREFI window that opened at `now`.
        let mut t = node.table.clone();
        let prea = DramCommand::PrechargeAll;
        let e_prea = now.max(t.earliest_issue_ps(&prea));
        let v = t.check(&prea, e_prea);
        if !v.is_empty() {
            return Some((
                Property::RefreshSchedulability,
                format!("PREA rejected at its own earliest time {e_prea}: {v:?}"),
                Step {
                    cmd: prea,
                    at_ps: e_prea,
                },
            ));
        }
        t.apply(&prea, e_prea);
        let refresh = DramCommand::Refresh;
        let e_ref = e_prea.max(t.earliest_issue_ps(&refresh));
        let v = t.check(&refresh, e_ref);
        if !v.is_empty() {
            return Some((
                Property::RefreshSchedulability,
                format!("REF rejected at its own earliest time {e_ref} after PREA: {v:?}"),
                Step {
                    cmd: refresh,
                    at_ps: e_ref,
                },
            ));
        }
        let deadline = now + self.cfg.timing.t_refi_ps;
        let done = e_ref + self.cfg.timing.t_rfc_ps;
        if done > deadline {
            return Some((
                Property::RefreshSchedulability,
                format!(
                    "refresh completes at {done}, past the tREFI deadline {deadline} (PREA @ {e_prea}, REF @ {e_ref})"
                ),
                Step { cmd: refresh, at_ps: e_ref },
            ));
        }
        None
    }

    /// Replays a trace from scratch, scheduled-at-earliest, re-running every
    /// edge invariant and the final sweep. `Some` means the failure
    /// reproduces; the returned violation carries the resolved steps.
    fn evaluate(&mut self, elems: &[Elem]) -> Option<Violation> {
        let mut node = self.root();
        let mut steps = Vec::new();
        for &(cmd, delay) in elems {
            match self.try_step(&node, &cmd, delay) {
                Stepped::Rejected => return None,
                Stepped::Edge(property, detail) => {
                    let at = node.now.max(node.table.earliest_issue_ps(&cmd))
                        + delay * self.cfg.timing.t_ck_ps;
                    steps.push(Step { cmd, at_ps: at });
                    return Some(Violation {
                        property,
                        detail,
                        trace: steps,
                    });
                }
                Stepped::Ok(child, step) => {
                    steps.push(step);
                    node = *child;
                }
            }
        }
        self.sweep(&node).map(|(property, detail, probe)| {
            steps.push(probe);
            Violation {
                property,
                detail,
                trace: steps,
            }
        })
    }

    /// Greedy delta debugging: repeatedly drop any element whose removal
    /// keeps the failure reproducible, to a fixpoint.
    fn minimize(&mut self, mut elems: Vec<Elem>) -> Vec<Elem> {
        loop {
            let mut removed = false;
            let mut i = 0;
            while i < elems.len() {
                let mut candidate = elems.clone();
                candidate.remove(i);
                if self.evaluate(&candidate).is_some() {
                    elems = candidate;
                    removed = true;
                } else {
                    i += 1;
                }
            }
            if !removed {
                return elems;
            }
        }
    }

    fn record(&mut self, elems: Vec<Elem>) {
        let minimal = self.minimize(elems);
        let Some(v) = self.evaluate(&minimal) else {
            // Minimization preserves reproducibility by construction.
            return;
        };
        if !self.violations.iter().any(|x| x.detail == v.detail) {
            self.violations.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(depth: usize) -> ModelConfig {
        let mut cfg = ModelConfig::small(depth);
        cfg.act_rows = 1;
        cfg.jitter = false;
        cfg
    }

    #[test]
    fn clean_table_has_no_violations_small() {
        let report = explore(&quick(3));
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.stats.states > 50, "{:?}", report.stats);
        assert_eq!(report.stats.deepest, 3);
    }

    #[test]
    fn clean_table_has_no_violations_rank_folded() {
        let mut cfg = ModelConfig::rank_folded(3);
        cfg.act_rows = 1;
        cfg.jitter = false;
        let report = explore(&cfg);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn jitter_and_rows_enrich_the_state_space() {
        let base = explore(&quick(3)).stats.states;
        let jittered = explore(&ModelConfig::small(3)).stats.states;
        assert!(jittered > base, "{jittered} vs {base}");
    }

    #[test]
    fn alphabet_covers_every_class_and_bank() {
        let cfg = ModelConfig::small(1);
        let a = alphabet(&cfg);
        // 4 banks x 2 rows ACT + 4 PRE + PREA + 4 RD + 4 WR + REF + 4 RFM.
        assert_eq!(a.len(), 26);
        let mut no_rfm = cfg.clone();
        no_rfm.with_rfm = false;
        assert_eq!(alphabet(&no_rfm).len(), 22);
    }

    #[test]
    fn corrupted_entry_yields_minimized_replayable_trace() {
        use easydram_dram::{CmdClass, MinDistance, Scope, TimingRule};
        let cfg = ModelConfig {
            fail_fast: true,
            ..quick(3)
        };
        let mut table = TimingTable::new(&cfg.timing);
        // Shorten tRCD by one tick: the table now admits a READ one ps
        // before the oracle (and JEDEC) allow it.
        let d = cfg.timing.t_rcd_ps - 1;
        for next in [CmdClass::Rd, CmdClass::Wr] {
            table.set_entry(
                Scope::Bank,
                CmdClass::Act,
                next,
                Some(MinDistance {
                    dist_ps: d,
                    rule: Some(TimingRule::Trcd),
                }),
            );
        }
        let report = explore_with_table(&cfg, table);
        assert!(!report.violations.is_empty());
        let v = &report.violations[0];
        assert_eq!(v.property, Property::Equivalence);
        // Minimal: one ACT to arm the constraint, plus the probe.
        assert!(v.trace.len() <= 2, "{v}");
        assert!(v.detail.contains("table"), "{v}");
    }
}
