//! Replayable counterexample traces.
//!
//! A trace is the `(command, issue_ps)` sequence the `serve_loop` bench
//! replays ([`easydram_bench::ScheduledCmd`] semantics): each line is the
//! command's canonical [`Display`] form followed by ` @ ` and the absolute
//! issue time in picoseconds. Replaying a trace means applying each command
//! at its printed time against fresh trackers.
//!
//! [`easydram_bench::ScheduledCmd`]: https://docs.rs/easydram-bench
//! [`Display`]: std::fmt::Display

use easydram_dram::DramCommand;

/// One step of a counterexample: a command and its absolute issue time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// The issued command.
    pub cmd: DramCommand,
    /// Absolute issue time, picoseconds.
    pub at_ps: u64,
}

impl std::fmt::Display for Step {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} @ {}", self.cmd, self.at_ps)
    }
}

/// Renders a trace one step per line, in replay order.
#[must_use]
pub fn format_trace(steps: &[Step]) -> String {
    let mut out = String::new();
    for s in steps {
        out.push_str(&s.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_display_matches_replay_format() {
        let s = Step {
            cmd: DramCommand::Activate { bank: 0, row: 1 },
            at_ps: 13_500,
        };
        assert_eq!(s.to_string(), "ACT b0 r1 @ 13500");
        let s = Step {
            cmd: DramCommand::Refresh,
            at_ps: 0,
        };
        assert_eq!(s.to_string(), "REF @ 0");
    }

    #[test]
    fn trace_is_one_step_per_line() {
        let t = [
            Step {
                cmd: DramCommand::Activate { bank: 1, row: 0 },
                at_ps: 0,
            },
            Step {
                cmd: DramCommand::Precharge { bank: 1 },
                at_ps: 36_000,
            },
        ];
        assert_eq!(format_trace(&t), "ACT b1 r0 @ 0\nPRE b1 @ 36000\n");
    }
}
