//! Fixture-based self-tests: one seeded violation per rule, asserted down to
//! the exact rule id, file path, and line number — plus the proof that each
//! finding disappears when its rule is disabled.

use std::collections::BTreeSet;

use easydram_lint::{lint_source, FileScope, Rule};

const SIM: FileScope = FileScope {
    sim: true,
    rng_exempt: false,
    par_exempt: false,
};

fn all_rules() -> BTreeSet<Rule> {
    Rule::all().iter().copied().collect()
}

/// Lints a fixture and returns `(rule id, line)` pairs, sorted.
fn findings(path: &str, src: &str) -> Vec<(&'static str, u32)> {
    let diags = lint_source(path, src, SIM, &all_rules());
    for d in &diags {
        assert_eq!(d.path, path, "diagnostic must carry the fixture path");
    }
    diags.iter().map(|d| (d.rule.id(), d.line)).collect()
}

/// Lints a fixture with `disabled` switched off.
fn findings_without(path: &str, src: &str, disabled: Rule) -> Vec<(&'static str, u32)> {
    let mut enabled = all_rules();
    enabled.remove(&disabled);
    lint_source(path, src, SIM, &enabled)
        .iter()
        .map(|d| (d.rule.id(), d.line))
        .collect()
}

macro_rules! fixture {
    ($name:ident, $file:literal, $rule:expr, $expected:expr) => {
        #[test]
        fn $name() {
            let path = concat!("crates/lint/tests/fixtures/", $file);
            let src = include_str!(concat!("fixtures/", $file));
            let expected: &[(&str, u32)] = &$expected;
            assert_eq!(findings(path, src), expected, "fixture {}", $file);
            // The same fixture goes quiet when its rule is disabled — this is
            // the "fixture test fails if the rule is wired off" guarantee.
            assert!(
                findings_without(path, src, $rule)
                    .iter()
                    .all(|(id, _)| *id != $rule.id()),
                "disabling {} must silence it",
                $rule.id()
            );
        }
    };
}

fixture!(
    det_hash_order,
    "det_hash_order.rs",
    Rule::DetHashOrder,
    [("det/hash-order", 1), ("det/hash-order", 3)]
);
fixture!(
    det_wall_clock,
    "det_wall_clock.rs",
    Rule::DetWallClock,
    [("det/wall-clock", 2)]
);
fixture!(
    det_stray_rng,
    "det_stray_rng.rs",
    Rule::DetStrayRng,
    [("det/stray-rng", 2)]
);
fixture!(
    det_thread_spawn,
    "det_thread_spawn.rs",
    Rule::DetThreadSpawn,
    [
        ("det/thread-spawn", 2),
        ("det/thread-spawn", 3),
        ("det/thread-spawn", 6),
        ("det/thread-spawn", 7)
    ]
);
fixture!(
    alloc_vec_new,
    "alloc_vec_new.rs",
    Rule::AllocVecNew,
    [("alloc/vec-new", 3)]
);
fixture!(
    alloc_box_new,
    "alloc_box_new.rs",
    Rule::AllocBoxNew,
    [("alloc/box-new", 3)]
);
fixture!(
    alloc_clone,
    "alloc_clone.rs",
    Rule::AllocClone,
    [("alloc/clone", 3)]
);
fixture!(
    alloc_collect,
    "alloc_collect.rs",
    Rule::AllocCollect,
    [("alloc/collect", 3)]
);
fixture!(
    pragma_allow_needs_reason,
    "pragma_allow_needs_reason.rs",
    Rule::PragmaAllowNeedsReason,
    [("pragma/allow-needs-reason", 2)]
);
fixture!(
    pragma_unknown_rule,
    "pragma_unknown_rule.rs",
    Rule::PragmaUnknownRule,
    [("pragma/unknown-rule", 1)]
);
fixture!(
    pragma_unused_allow,
    "pragma_unused_allow.rs",
    Rule::PragmaUnusedAllow,
    [("pragma/unused-allow", 1)]
);
fixture!(
    obs_emulated_time_only,
    "obs_emulated_time_only.rs",
    Rule::ObsEmulatedTimeOnly,
    [("obs/emulated-time-only", 5), ("obs/emulated-time-only", 7)]
);

#[test]
fn clean_fixture_has_no_findings() {
    let src = include_str!("fixtures/clean.rs");
    assert_eq!(findings("crates/lint/tests/fixtures/clean.rs", src), []);
}

#[test]
fn every_rule_has_a_seeded_fixture() {
    // The macro invocations above cover the catalog; this guards against a
    // rule being added without a fixture.
    let seeded: BTreeSet<&str> = [
        "det/hash-order",
        "det/wall-clock",
        "det/stray-rng",
        "det/thread-spawn",
        "alloc/vec-new",
        "alloc/box-new",
        "alloc/clone",
        "alloc/collect",
        "pragma/allow-needs-reason",
        "pragma/unknown-rule",
        "pragma/unused-allow",
        "obs/emulated-time-only",
    ]
    .into_iter()
    .collect();
    let catalog: BTreeSet<&str> = Rule::all().iter().map(|r| r.id()).collect();
    assert_eq!(seeded, catalog);
}

#[test]
fn det_rules_only_fire_in_sim_scope() {
    let src = include_str!("fixtures/det_hash_order.rs");
    let host = FileScope {
        sim: false,
        rng_exempt: false,
        par_exempt: false,
    };
    let diags = lint_source("crates/bench/src/x.rs", src, host, &all_rules());
    assert!(
        diags.is_empty(),
        "det rules must not fire outside sim crates"
    );
}

#[test]
fn rng_home_is_exempt_from_stray_rng() {
    let src = include_str!("fixtures/det_stray_rng.rs");
    let det_home = FileScope {
        sim: true,
        rng_exempt: true,
        par_exempt: false,
    };
    let diags = lint_source("crates/dram/src/det.rs", src, det_home, &all_rules());
    assert!(diags.is_empty(), "det.rs may construct RNG state");
}

#[test]
fn par_home_is_exempt_from_thread_spawn() {
    let src = include_str!("fixtures/det_thread_spawn.rs");
    let par_home = FileScope {
        sim: true,
        rng_exempt: false,
        par_exempt: true,
    };
    let diags = lint_source("crates/core/src/par.rs", src, par_home, &all_rules());
    assert!(diags.is_empty(), "par.rs may own OS threads: {diags:?}");
}

#[test]
fn stray_spawn_elsewhere_in_core_still_fires() {
    // End-to-end through the walker's own scope derivation: the identical
    // source fires in any other crates/core module (both the spawn and the
    // held JoinHandle) and is exempt only at the reserved par.rs path — the
    // exemption is a single exact file, not a prefix.
    let src = include_str!("fixtures/det_thread_spawn_core.rs");
    let stray_path = "crates/core/src/smc/mod.rs";
    let diags = lint_source(
        stray_path,
        src,
        easydram_lint::scope_for(stray_path),
        &all_rules(),
    );
    let got: Vec<(&str, u32)> = diags.iter().map(|d| (d.rule.id(), d.line)).collect();
    assert_eq!(
        got,
        [("det/thread-spawn", 2), ("det/thread-spawn", 6)],
        "stray thread ownership in core must fire"
    );
    let par_path = "crates/core/src/par.rs";
    let par_diags = lint_source(
        par_path,
        src,
        easydram_lint::scope_for(par_path),
        &all_rules(),
    );
    assert!(par_diags.is_empty(), "{par_diags:?}");
    let near_miss = "crates/core/src/par/mod.rs";
    assert!(
        !easydram_lint::scope_for(near_miss).par_exempt,
        "the exemption must not widen to sibling paths"
    );
}

#[test]
fn justified_allow_suppresses_and_is_not_stale() {
    let src = "pub struct Cache {\n    // lint: allow(det/hash-order) — lookup-only, never iterated\n    map: std::collections::HashMap<u64, u32>,\n}\n";
    let diags = lint_source("x.rs", src, SIM, &all_rules());
    assert!(diags.is_empty(), "justified allow must be clean: {diags:?}");
}

#[test]
fn trailing_allow_targets_its_own_line() {
    let src = "use std::collections::HashMap; // lint: allow(det/hash-order) — import for a justified field\n";
    let diags = lint_source("x.rs", src, SIM, &all_rules());
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn allow_list_covers_multiple_rules() {
    let src = "// lint: allow(alloc/vec-new, alloc/collect) — cold error path\n// lint: no_alloc\npub fn hot(n: u32) -> usize {\n    let v: Vec<u32> = (0..n).collect();\n    v.len()\n}\n";
    // Own-line allow targets the next *code* line (line 3, `pub fn`), not the
    // violation on line 4 — so both findings survive and both allows go stale.
    let diags = lint_source("x.rs", src, SIM, &all_rules());
    let ids: Vec<&str> = diags.iter().map(|d| d.rule.id()).collect();
    assert!(ids.contains(&"alloc/collect"));
    assert!(ids.contains(&"pragma/unused-allow"));
}

#[test]
fn no_alloc_region_ends_at_closing_brace() {
    let src = "// lint: no_alloc\npub fn hot() -> u32 {\n    7\n}\npub fn cold() -> Vec<u8> {\n    Vec::new()\n}\n";
    let diags = lint_source("x.rs", src, SIM, &all_rules());
    assert!(
        diags.is_empty(),
        "allocation after the region must be fine: {diags:?}"
    );
}
