// lint: no_alloc
pub fn hot() -> Box<u8> {
    Box::new(7)
}
