pub fn seed() -> u64 {
    let mut r = thread_rng();
    r.next_u64()
}
