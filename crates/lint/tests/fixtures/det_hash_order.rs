use std::collections::HashMap;

pub fn order(m: &HashMap<u64, u32>) -> u64 {
    m.keys().sum()
}
