// lint: allow(det/wall-clock) — paranoia: nothing on the next line reads a clock
pub fn f() -> u32 {
    7
}
