pub struct Cache {
    // lint: allow(det/hash-order)
    map: std::collections::HashMap<u64, u32>,
}
