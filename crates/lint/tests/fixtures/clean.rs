//! A clean file: ordered maps, seeded determinism, no hot-path allocation,
//! and hash maps only inside test code (which is out of lint scope).
use std::collections::BTreeMap;

// lint: no_alloc
pub fn total(m: &BTreeMap<u64, u32>) -> u64 {
    let mut sum = 0u64;
    for (k, v) in m {
        sum += k + u64::from(*v);
    }
    sum
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_maps_in_tests_are_fine() {
        let mut m = HashMap::new();
        m.insert(1u64, 2u32);
        let copy = m.clone();
        assert_eq!(copy.len(), 1);
    }
}
