// lint: no_alloc
pub fn hot() -> Vec<u8> {
    Vec::new()
}
