// Seeded violations for obs/emulated-time-only: trace records built from
// host-clock readings. `Duration`/`as_nanos` are deliberately tokens no
// other rule matches, so exactly this rule fires.
pub fn bad_records(dur: std::time::Duration, out: &mut Vec<u64>) {
    let ev = TraceEvent::enqueue(dur.as_nanos() as u64, 1, 0, 0, 0);
    out.push(ev.ps);
    let sw = QuantumSwitch { cycle: dur.as_millis() as u64, from: 0, to: 1 };
    out.push(sw.cycle);
}

pub fn good_record(ps: u64, out: &mut Vec<u64>) {
    let ev = TraceEvent::retire(ps, 1, 0, 0, 0);
    out.push(ev.ps);
}
