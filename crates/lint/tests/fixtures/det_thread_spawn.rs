pub fn fan_out() {
    let t = std::thread::spawn(|| 42u32);
    std::thread::scope(|s| {
        s.spawn(|| ());
    });
    let _ = rayon::join(|| 1, || 2);
    let _ = t.join();
}
