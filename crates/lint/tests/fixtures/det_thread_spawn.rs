pub fn fan_out() {
    let t = std::thread::spawn(|| 42u32);
    std::thread::scope(|s| {
        s.spawn(|| ());
    });
    let _ = rayon::join(|| 1, || 2);
    let held: Option<std::thread::JoinHandle<()>> = None;
    drop(held);
    let _ = t.join();
}
