pub struct Stray {
    worker: Option<std::thread::JoinHandle<u64>>,
}

pub fn stray() -> Stray {
    let worker = std::thread::spawn(|| 7u64);
    Stray {
        worker: Some(worker),
    }
}
