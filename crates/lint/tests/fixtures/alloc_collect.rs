// lint: no_alloc
pub fn hot(n: u32) -> usize {
    let v: Vec<u32> = (0..n).collect();
    v.len()
}
