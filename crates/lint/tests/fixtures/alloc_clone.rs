// lint: no_alloc
pub fn hot(v: &[u64; 4]) -> [u64; 4] {
    v.clone()
}
