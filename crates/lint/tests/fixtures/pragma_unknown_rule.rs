// lint: allow(det/no-such-rule) — justified at length, but not a real rule
pub fn f() -> u32 {
    7
}
