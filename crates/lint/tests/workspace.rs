//! The workspace integration gate: the real source tree must be lint-clean
//! with every rule enabled. This is the same check CI's `static-analysis`
//! job runs via `cargo run -p easydram-lint -- --deny`.

use easydram_lint::{run, LintConfig};

fn workspace_root() -> std::path::PathBuf {
    // crates/lint/ -> workspace root
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_lint_clean() {
    let report = run(&LintConfig::new(workspace_root())).expect("lint walk");
    assert!(
        report.files.len() > 20,
        "walker must visit the whole workspace, saw {} files",
        report.files.len()
    );
    assert!(
        report.diagnostics.is_empty(),
        "workspace must be lint-clean, got {} finding(s):\n{}",
        report.diagnostics.len(),
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn walker_visits_known_hot_files_and_skips_exclusions() {
    let report = run(&LintConfig::new(workspace_root())).expect("lint walk");
    for must_see in [
        "crates/core/src/system.rs",
        "crates/dram/src/table.rs",
        "crates/dram/src/det.rs",
        "src/lib.rs",
    ] {
        assert!(
            report.files.iter().any(|f| f == must_see),
            "walker must visit {must_see}"
        );
    }
    for skipped in ["shims/", "crates/lint/", "target/"] {
        assert!(
            !report.files.iter().any(|f| f.starts_with(skipped)),
            "walker must not visit {skipped}"
        );
    }
}
