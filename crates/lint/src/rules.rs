//! The closed rule catalog. Every diagnostic the linter can emit carries one
//! of these rules; ids are stable and are the grammar of `allow(...)` pragmas
//! and `--disable` flags.

/// A lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `HashMap`/`HashSet` in simulation code: iteration order is seeded per
    /// process, so any traversal leaks nondeterminism into the simulation.
    DetHashOrder,
    /// `SystemTime`/`Instant` in simulation code: wall-clock reads make runs
    /// irreproducible.
    DetWallClock,
    /// Randomness constructed outside `easydram_dram::det` in simulation
    /// code: all stochastic behaviour must derive from the config seed.
    DetStrayRng,
    /// `std::thread::spawn`/`scope`/`Builder`, `rayon::...`, or a
    /// `JoinHandle` in simulation code: OS scheduling order leaks into
    /// simulated state unless the parallelism goes through the deterministic
    /// pool reserved at `crates/core/src/par.rs` or a baton-scheduled
    /// harness. Every join-handle site outside that module needs a justified
    /// allow pragma.
    DetThreadSpawn,
    /// `Vec::new`/`vec!`/`String::from`/`format!`/`.to_vec()`/… in a
    /// `// lint: no_alloc` region.
    AllocVecNew,
    /// `Box::new`/`Rc::new`/`Arc::new` in a `// lint: no_alloc` region.
    AllocBoxNew,
    /// `.clone()` in a `// lint: no_alloc` region.
    AllocClone,
    /// `.collect()` in a `// lint: no_alloc` region.
    AllocCollect,
    /// An `allow(...)` pragma with no justification text after the rule list.
    PragmaAllowNeedsReason,
    /// A pragma naming a rule id outside the closed catalog, or with a body
    /// the grammar does not recognize.
    PragmaUnknownRule,
    /// An `allow(...)` pragma whose target line raised no finding of the
    /// allowed rule — stale escapes must be deleted, not accumulated.
    PragmaUnusedAllow,
    /// A trace-event or switch-log record constructed from a host clock
    /// type in simulation code: observability timestamps must be emulated
    /// picoseconds (or cycles), never `Instant`/`Duration` readings.
    ObsEmulatedTimeOnly,
}

impl Rule {
    /// Every rule, in reporting order.
    #[must_use]
    pub fn all() -> &'static [Rule] {
        &[
            Rule::DetHashOrder,
            Rule::DetWallClock,
            Rule::DetStrayRng,
            Rule::DetThreadSpawn,
            Rule::AllocVecNew,
            Rule::AllocBoxNew,
            Rule::AllocClone,
            Rule::AllocCollect,
            Rule::PragmaAllowNeedsReason,
            Rule::PragmaUnknownRule,
            Rule::PragmaUnusedAllow,
            Rule::ObsEmulatedTimeOnly,
        ]
    }

    /// Stable id, as used in `allow(...)` pragmas and `--disable`.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::DetHashOrder => "det/hash-order",
            Rule::DetWallClock => "det/wall-clock",
            Rule::DetStrayRng => "det/stray-rng",
            Rule::DetThreadSpawn => "det/thread-spawn",
            Rule::AllocVecNew => "alloc/vec-new",
            Rule::AllocBoxNew => "alloc/box-new",
            Rule::AllocClone => "alloc/clone",
            Rule::AllocCollect => "alloc/collect",
            Rule::PragmaAllowNeedsReason => "pragma/allow-needs-reason",
            Rule::PragmaUnknownRule => "pragma/unknown-rule",
            Rule::PragmaUnusedAllow => "pragma/unused-allow",
            Rule::ObsEmulatedTimeOnly => "obs/emulated-time-only",
        }
    }

    /// One-line description for `--list-rules` and the docs.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            Rule::DetHashOrder => {
                "HashMap/HashSet in simulation code (hash iteration order is \
                 nondeterministic; use BTreeMap/BTreeSet or justify a \
                 lookup-only map with an allow pragma)"
            }
            Rule::DetWallClock => {
                "SystemTime/Instant in simulation code (wall-clock reads make \
                 runs irreproducible)"
            }
            Rule::DetStrayRng => {
                "randomness constructed outside easydram_dram::det in \
                 simulation code (all stochastic behaviour must derive from \
                 the config seed)"
            }
            Rule::DetThreadSpawn => {
                "std::thread::spawn/scope/Builder, rayon, or a JoinHandle in \
                 simulation code (OS scheduling order is nondeterministic; \
                 parallelism must go through the deterministic pool in \
                 crates/core/src/par.rs or a baton-scheduled harness, \
                 justified with an allow pragma)"
            }
            Rule::AllocVecNew => {
                "Vec/String/format! construction inside a `// lint: no_alloc` \
                 region"
            }
            Rule::AllocBoxNew => "Box/Rc/Arc construction inside a `// lint: no_alloc` region",
            Rule::AllocClone => ".clone() inside a `// lint: no_alloc` region",
            Rule::AllocCollect => ".collect() inside a `// lint: no_alloc` region",
            Rule::PragmaAllowNeedsReason => {
                "allow(...) pragma without a justification after the rule list"
            }
            Rule::PragmaUnknownRule => {
                "pragma naming a rule outside the closed catalog (or an \
                 unrecognized pragma body)"
            }
            Rule::PragmaUnusedAllow => {
                "allow(...) pragma whose target line raised no finding of the \
                 allowed rule"
            }
            Rule::ObsEmulatedTimeOnly => {
                "trace-event construction fed from a host clock \
                 (Instant/Duration/elapsed/as_nanos) in simulation code \
                 (observability timestamps must be emulated picoseconds or \
                 cycles, so traces replay byte-identically)"
            }
        }
    }

    /// Looks a rule up by its stable id.
    #[must_use]
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::all().iter().copied().find(|r| r.id() == id)
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_distinct() {
        let ids: Vec<&str> = Rule::all().iter().map(|r| r.id()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate rule id");
        assert_eq!(Rule::all().len(), 12);
        for r in Rule::all() {
            assert_eq!(Rule::from_id(r.id()), Some(*r));
        }
        assert_eq!(Rule::from_id("det/hash-order"), Some(Rule::DetHashOrder));
        assert_eq!(Rule::from_id("no/such-rule"), None);
    }
}
