//! CLI for the workspace invariant linter.
//!
//! ```text
//! cargo run -p easydram-lint -- [--root <dir>] [--deny] [--list-rules]
//!                               [--disable <rule-id>]...
//! ```
//!
//! `--deny` exits non-zero when any finding survives; CI's `static-analysis`
//! job runs exactly that.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

use easydram_lint::{run, LintConfig, Rule};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny = false;
    let mut disabled = BTreeSet::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            "--disable" => {
                let Some(id) = args.next() else {
                    eprintln!("--disable needs a rule id");
                    return ExitCode::from(2);
                };
                let Some(rule) = Rule::from_id(&id) else {
                    eprintln!("unknown rule `{id}`; see --list-rules");
                    return ExitCode::from(2);
                };
                disabled.insert(rule);
            }
            "--list-rules" => {
                for r in Rule::all() {
                    println!("{:<28} {}", r.id(), r.summary());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "easydram-lint: workspace invariant linter\n\n\
                     USAGE: easydram-lint [--root <dir>] [--deny] \
                     [--list-rules] [--disable <rule-id>]...\n\n\
                     --root <dir>        workspace root (default: .)\n\
                     --deny              exit 1 if any finding survives\n\
                     --disable <rule>    switch one rule off (repeatable)\n\
                     --list-rules        print the rule catalog and exit"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let cfg = LintConfig { root, disabled };
    let report = match run(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint walk failed: {e}");
            return ExitCode::from(2);
        }
    };
    for d in &report.diagnostics {
        println!("{d}");
    }
    if report.diagnostics.is_empty() {
        println!(
            "lint clean: {} files, {} rules",
            report.files.len(),
            cfg.enabled().len()
        );
        ExitCode::SUCCESS
    } else {
        println!("{} finding(s)", report.diagnostics.len());
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
