//! A small hand-rolled Rust lexer: strips comments and string/char literals,
//! emits a line-tagged token stream, and captures `// lint:` pragma comments.
//!
//! The rules engine pattern-matches on token *sequences* (e.g. `Vec`, `::`,
//! `new`), so the lexer only needs to be faithful about four things: token
//! boundaries, line numbers, what is and is not a comment/literal, and the
//! lifetime-vs-char-literal ambiguity. It does not parse Rust.

/// One source token: an identifier/keyword, a number, `::`, or a single
/// punctuation character — never comment or literal text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line.
    pub line: u32,
    /// Token text (identifiers verbatim; punctuation as itself).
    pub text: String,
}

/// A `// lint: ...` pragma comment, grammar-checked by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// 1-based source line of the comment.
    pub line: u32,
    /// Whether the comment is the first non-whitespace on its line (an
    /// own-line pragma applies to the *next* code line / item; a trailing
    /// pragma applies to its own line).
    pub own_line: bool,
    /// The pragma body after `lint:`, trimmed (e.g. `no_alloc`,
    /// `allow(det/hash-order) — lookup-only`).
    pub body: String,
}

/// The lexer's output for one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Line-tagged tokens, comments and literals stripped.
    pub tokens: Vec<Token>,
    /// Captured `// lint:` pragmas in source order.
    pub pragmas: Vec<Pragma>,
}

/// Lexes one file's source text.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Whether any token has been emitted on the current line (decides
    // `own_line` for pragmas).
    let mut line_has_code = false;
    let is_ident_start = |c: u8| c.is_ascii_alphabetic() || c == b'_';
    let is_ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                line_has_code = false;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                // Line comment: capture `// lint:` pragmas, drop the rest.
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                let text = src[start..j].trim_start();
                // Doc comments (`///`, `//!`) are never pragmas.
                let body = text
                    .strip_prefix("lint:")
                    .filter(|_| !src[start..].starts_with(['/', '!']));
                if let Some(body) = body {
                    out.pragmas.push(Pragma {
                        line,
                        own_line: !line_has_code,
                        body: body.trim().to_string(),
                    });
                }
                i = j;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Block comment, nested.
                let mut depth = 1u32;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'\n' {
                        line += 1;
                        line_has_code = false;
                        j += 1;
                    } else if b[j] == b'/' && b.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && b.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            b'"' => {
                i = skip_string(b, i + 1, &mut line);
                line_has_code = true;
            }
            b'r' | b'b' if starts_raw_string(b, i) => {
                // r"..." / r#"..."# / br"..." / rb-prefix variants: find the
                // `#` count, then scan for `"` followed by that many `#`.
                let mut j = i + 1;
                if b[j] == b'r' {
                    j += 1; // the `b` of `br`
                }
                let mut hashes = 0usize;
                while b.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                j += 1; // opening quote
                'raw: while j < b.len() {
                    if b[j] == b'\n' {
                        line += 1;
                    } else if b[j] == b'"' {
                        let mut k = 0usize;
                        while k < hashes && b.get(j + 1 + k) == Some(&b'#') {
                            k += 1;
                        }
                        if k == hashes {
                            j += 1 + hashes;
                            break 'raw;
                        }
                    }
                    j += 1;
                }
                i = j;
                line_has_code = true;
            }
            b'\'' => {
                // Lifetime (`'a`, `'_`, `'static`) vs char literal (`'x'`,
                // `'\n'`): a backslash or a non-identifier means char; an
                // identifier char followed by a closing quote means char
                // (`'a'`); otherwise it's a lifetime and only the quote is
                // consumed (the identifier lexes as a normal token).
                let next = b.get(i + 1).copied();
                match next {
                    Some(b'\\') => {
                        let mut j = i + 2;
                        if j < b.len() {
                            j += 1; // the escaped character
                        }
                        while j < b.len() && b[j] != b'\'' {
                            j += 1; // \u{...} and friends
                        }
                        i = j + 1;
                    }
                    Some(n) if is_ident_start(n) && b.get(i + 2) != Some(&b'\'') => {
                        i += 1; // lifetime: drop the quote, keep the ident
                    }
                    Some(_) => {
                        // '<single char>'
                        let mut j = i + 1;
                        if b[j] == b'\n' {
                            line += 1;
                        }
                        j += 1;
                        while j < b.len() && b[j] != b'\'' {
                            j += 1;
                        }
                        i = j + 1;
                    }
                    None => i += 1,
                }
                line_has_code = true;
            }
            b':' if b.get(i + 1) == Some(&b':') => {
                out.tokens.push(Token {
                    line,
                    text: "::".to_string(),
                });
                line_has_code = true;
                i += 2;
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident(b[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    line,
                    text: src[start..i].to_string(),
                });
                line_has_code = true;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (is_ident(b[i])) {
                    i += 1;
                }
                out.tokens.push(Token {
                    line,
                    text: src[start..i].to_string(),
                });
                line_has_code = true;
            }
            _ => {
                out.tokens.push(Token {
                    line,
                    text: (c as char).to_string(),
                });
                line_has_code = true;
                i += 1;
            }
        }
    }
    out
}

/// Whether position `i` starts a raw (or raw-byte) string literal: `r"`,
/// `r#`, `br"`, `br#`.
fn starts_raw_string(b: &[u8], i: usize) -> bool {
    let rest = &b[i..];
    let after_r = |r: &[u8]| matches!(r.first(), Some(b'"' | b'#'));
    match rest.first() {
        Some(b'r') => after_r(&rest[1..]),
        Some(b'b') => rest.get(1) == Some(&b'r') && after_r(&rest[2..]),
        _ => false,
    }
}

/// Skips a normal string literal body starting *after* the opening quote;
/// returns the index just past the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strips_comments_and_strings() {
        let src = r#"
            // a HashMap in a comment
            let x = "HashMap in a string"; /* Instant
               in a block comment */ let y = 1;
        "#;
        let t = texts(src);
        assert!(!t.contains(&"HashMap".to_string()));
        assert!(!t.contains(&"Instant".to_string()));
        assert!(t.contains(&"let".to_string()));
        assert!(t.contains(&"y".to_string()));
    }

    #[test]
    fn tracks_lines() {
        let src = "a\nb\n  c";
        let toks = lex(src).tokens;
        assert_eq!(
            toks.iter()
                .map(|t| (t.line, t.text.as_str()))
                .collect::<Vec<_>>(),
            [(1, "a"), (2, "b"), (3, "c")]
        );
    }

    #[test]
    fn captures_pragmas_with_own_line_flag() {
        let src = "// lint: no_alloc\nfn f() {}\nlet x = 1; // lint: allow(det/hash-order) — ok\n";
        let p = lex(src).pragmas;
        assert_eq!(p.len(), 2);
        assert_eq!(
            (p[0].line, p[0].own_line, p[0].body.as_str()),
            (1, true, "no_alloc")
        );
        assert_eq!(p[1].line, 3);
        assert!(!p[1].own_line);
        assert!(p[1].body.starts_with("allow(det/hash-order)"));
    }

    #[test]
    fn doc_comments_are_not_pragmas() {
        let src = "/// lint: no_alloc\n//! lint: no_alloc\nfn f() {}\n";
        assert!(lex(src).pragmas.is_empty());
    }

    #[test]
    fn raw_strings_and_chars_are_literals() {
        let src = r##"let a = r#"HashMap "quoted" inside"#; let b = 'I'; let c = '\n';"##;
        let t = texts(src);
        assert!(!t.contains(&"HashMap".to_string()));
        assert!(!t.contains(&"I".to_string()));
        assert!(t.contains(&"b".to_string()));
        assert!(t.contains(&"c".to_string()));
    }

    #[test]
    fn lifetimes_keep_their_identifier() {
        let t = texts("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(t.iter().filter(|s| s.as_str() == "a").count(), 3);
        // and `'a'` is consumed as a char literal, not a lifetime:
        let t = texts("let x = 'a';");
        assert!(!t.contains(&"a".to_string()));
    }

    #[test]
    fn path_separator_is_one_token() {
        let t = texts("Vec::new()");
        assert_eq!(t, ["Vec", "::", "new", "(", ")"]);
    }

    #[test]
    fn multiline_strings_count_lines() {
        let src = "let a = \"x\ny\";\nlet b = 1;";
        let toks = lex(src).tokens;
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
    }
}
