//! `easydram-lint`: the workspace invariant linter.
//!
//! A dependency-free static-analysis pass over the workspace's Rust source.
//! It lexes each file with a hand-rolled token scanner ([`lexer`]) — no
//! `syn`, no crates.io — and enforces three families of invariants
//! ([`rules::Rule`]):
//!
//! * **Determinism** (`det/*`): simulation crates may not use
//!   `HashMap`/`HashSet` (iteration order), `SystemTime`/`Instant`
//!   (wall clock), or construct randomness outside `easydram_dram::det`.
//! * **Hot-path allocation** (`alloc/*`): code annotated
//!   `// lint: no_alloc` may not construct `Vec`/`String`/`Box`, `.clone()`,
//!   or `.collect()`.
//! * **Pragma hygiene** (`pragma/*`): `allow(...)` escapes need a
//!   justification, must name catalog rules, and must actually suppress
//!   something.
//!
//! Run it as `cargo run -p easydram-lint -- --deny` (CI's `static-analysis`
//! job), or through the workspace integration test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{lint_source, Diagnostic, FileScope};
pub use rules::Rule;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Crates whose `src/` is simulation code (determinism rules apply). The
/// bench harness and the linter itself are intentionally absent: neither
/// feeds simulated state.
const SIM_CRATES: &[&str] = &["bender", "core", "cpu", "dram", "ramulator", "workloads"];

/// The one file allowed to construct RNG state.
const RNG_HOME: &str = "crates/dram/src/det.rs";

/// The one file allowed to own OS threads (a deterministic-parallelism
/// harness, if/when one lands; the path is reserved so the exemption never
/// silently widens).
const PAR_HOME: &str = "crates/core/src/par.rs";

/// What to lint and which rules to run.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Workspace root (the directory holding the top-level `Cargo.toml`).
    pub root: PathBuf,
    /// Rules switched off via `--disable`.
    pub disabled: BTreeSet<Rule>,
}

impl LintConfig {
    /// All rules on, rooted at `root`.
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self {
            root: root.into(),
            disabled: BTreeSet::new(),
        }
    }

    /// The enabled rule set.
    #[must_use]
    pub fn enabled(&self) -> BTreeSet<Rule> {
        Rule::all()
            .iter()
            .copied()
            .filter(|r| !self.disabled.contains(r))
            .collect()
    }
}

/// Result of a workspace run.
#[derive(Debug)]
pub struct Report {
    /// Repo-relative paths of every file scanned, sorted.
    pub files: Vec<String>,
    /// All findings, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
}

/// Lints the workspace rooted at `cfg.root`.
///
/// Scans `src/` and every `crates/*/src/` except the linter's own crate;
/// `shims/` (offline stand-ins for crates.io dev-deps) and generated code
/// under `target/` are never visited.
///
/// # Errors
///
/// Returns any I/O error encountered while walking or reading source files.
pub fn run(cfg: &LintConfig) -> std::io::Result<Report> {
    let enabled = cfg.enabled();
    let mut files: Vec<PathBuf> = Vec::new();
    let root_src = cfg.root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    let crates_dir = cfg.root.join("crates");
    if crates_dir.is_dir() {
        let mut crates: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crates.sort();
        for krate in crates {
            if krate.file_name().is_some_and(|n| n == "lint") {
                continue; // the linter does not lint itself
            }
            let src = krate.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();

    let mut report = Report {
        files: Vec::with_capacity(files.len()),
        diagnostics: Vec::new(),
    };
    for path in files {
        let rel = rel_label(&cfg.root, &path);
        let src = std::fs::read_to_string(&path)?;
        let scope = scope_for(&rel);
        report
            .diagnostics
            .extend(lint_source(&rel, &src, scope, &enabled));
        report.files.push(rel);
    }
    report.diagnostics.sort();
    Ok(report)
}

/// Derives the lint scope from a repo-relative path.
#[must_use]
pub fn scope_for(rel: &str) -> FileScope {
    let sim = rel.starts_with("src/")
        || SIM_CRATES
            .iter()
            .any(|c| rel.starts_with(&format!("crates/{c}/src/")));
    FileScope {
        sim,
        rng_exempt: rel == RNG_HOME,
        par_exempt: rel == PAR_HOME,
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Repo-relative, `/`-separated label for diagnostics.
fn rel_label(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_classification() {
        assert!(scope_for("crates/dram/src/device.rs").sim);
        assert!(scope_for("crates/core/src/system.rs").sim);
        assert!(scope_for("src/lib.rs").sim);
        assert!(
            !scope_for("crates/bench/src/lib.rs").sim,
            "bench is host-side"
        );
        let det = scope_for("crates/dram/src/det.rs");
        assert!(det.sim && det.rng_exempt);
        assert!(!scope_for("crates/dram/src/device.rs").rng_exempt);
        let par = scope_for("crates/core/src/par.rs");
        assert!(par.sim && par.par_exempt);
        assert!(!scope_for("crates/core/src/multicore.rs").par_exempt);
    }

    #[test]
    fn disable_removes_rule_from_enabled_set() {
        let mut cfg = LintConfig::new(".");
        assert_eq!(cfg.enabled().len(), Rule::all().len());
        cfg.disabled.insert(Rule::DetHashOrder);
        assert!(!cfg.enabled().contains(&Rule::DetHashOrder));
        assert_eq!(cfg.enabled().len(), Rule::all().len() - 1);
    }
}
