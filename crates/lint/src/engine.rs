//! The rule engine: takes one file's token stream + pragmas and produces
//! diagnostics.
//!
//! Pass structure per file:
//! 1. mask out `#[cfg(test)]` / `#[test]` items (tokens *and* pragmas),
//! 2. resolve `// lint: no_alloc` regions to token-index ranges,
//! 3. parse `allow(...)` pragmas (emitting pragma-hygiene findings),
//! 4. scan tokens for determinism and allocation findings,
//! 5. apply allow suppressions, flag stale allows, sort.

use std::collections::BTreeSet;

use crate::lexer::{lex, Pragma, Token};
use crate::rules::Rule;

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Repo-relative path (always `/`-separated).
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Per-file lint scope, derived from the file's path by the walker.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileScope {
    /// Whether the determinism rules apply (simulation crates only).
    pub sim: bool,
    /// Whether `det/stray-rng` is exempt (`easydram_dram::det` itself — the
    /// one place allowed to construct RNG state).
    pub rng_exempt: bool,
    /// Whether `det/thread-spawn` is exempt (`easydram_core::par` — the one
    /// place allowed to own OS threads, behind a deterministic scheduler).
    pub par_exempt: bool,
}

/// Lints one file's source text. `path` is only used for labeling
/// diagnostics; scoping decisions come from `scope`.
#[must_use]
pub fn lint_source(
    path: &str,
    src: &str,
    scope: FileScope,
    enabled: &BTreeSet<Rule>,
) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let tokens = lexed.tokens;

    // 1. Test-gated code is out of scope for every rule.
    let (live, test_lines) = mask_test_items(&tokens);
    let pragmas: Vec<&Pragma> = lexed
        .pragmas
        .iter()
        .filter(|p| !test_lines.iter().any(|r| r.contains(&p.line)))
        .collect();

    // 2/3. Resolve pragmas.
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut no_alloc_regions: Vec<(usize, usize)> = Vec::new();
    let mut allows: Vec<AllowEntry> = Vec::new();
    for p in &pragmas {
        parse_pragma(
            p,
            &tokens,
            path,
            enabled,
            &mut no_alloc_regions,
            &mut allows,
            &mut diags,
        );
    }

    // 4. Token scans.
    let mut raw: Vec<Diagnostic> = Vec::new();
    if scope.sim {
        scan_determinism(path, &tokens, &live, scope, enabled, &mut raw);
        scan_obs(path, &tokens, &live, enabled, &mut raw);
    }
    scan_allocations(path, &tokens, &live, &no_alloc_regions, enabled, &mut raw);
    raw.sort();
    raw.dedup();

    // 5. Suppression: an allow eats every finding of its rule on its target
    // line; an allow that eats nothing is itself a finding.
    for a in &allows {
        let before = raw.len();
        raw.retain(|d| !(d.rule == a.rule && d.line == a.target_line));
        let used = raw.len() != before;
        if !used && enabled.contains(&Rule::PragmaUnusedAllow) && enabled.contains(&a.rule) {
            diags.push(Diagnostic {
                path: path.to_string(),
                line: a.pragma_line,
                rule: Rule::PragmaUnusedAllow,
                message: format!(
                    "allow({}) matched no finding on line {} — remove the stale escape",
                    a.rule.id(),
                    a.target_line
                ),
            });
        }
    }

    diags.extend(raw);
    diags.sort();
    diags.dedup();
    diags
}

/// One parsed `allow(rule)` with its resolved target line.
struct AllowEntry {
    rule: Rule,
    pragma_line: u32,
    target_line: u32,
}

/// Validates one pragma and records its effect.
fn parse_pragma(
    p: &Pragma,
    tokens: &[Token],
    path: &str,
    enabled: &BTreeSet<Rule>,
    no_alloc_regions: &mut Vec<(usize, usize)>,
    allows: &mut Vec<AllowEntry>,
    diags: &mut Vec<Diagnostic>,
) {
    let mut emit = |rule: Rule, message: String| {
        if enabled.contains(&rule) {
            diags.push(Diagnostic {
                path: path.to_string(),
                line: p.line,
                rule,
                message,
            });
        }
    };
    // `no_alloc` admits an optional trailing rationale: `no_alloc — ...`.
    if p.body.split_whitespace().next() == Some("no_alloc") {
        // Binds to the next brace block: the body of the item that starts at
        // or after the pragma line.
        if let Some(region) = brace_block_from_line(tokens, p.line) {
            no_alloc_regions.push(region);
        } else {
            emit(
                Rule::PragmaUnknownRule,
                "`no_alloc` pragma is not followed by a `{ ... }` block".to_string(),
            );
        }
        return;
    }
    if let Some(rest) = p.body.strip_prefix("allow(") {
        let Some(close) = rest.find(')') else {
            emit(
                Rule::PragmaUnknownRule,
                "unterminated allow(...) pragma".to_string(),
            );
            return;
        };
        let list = &rest[..close];
        let reason = rest[close + 1..]
            .trim_start_matches(|c: char| {
                c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':' | ',' | '.')
            })
            .trim();
        if reason.is_empty() {
            emit(
                Rule::PragmaAllowNeedsReason,
                format!("allow({list}) needs a justification after the rule list"),
            );
        }
        let names: Vec<&str> = list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if names.is_empty() {
            emit(
                Rule::PragmaUnknownRule,
                "allow() pragma with an empty rule list".to_string(),
            );
            return;
        }
        // Own-line pragma targets the next code line; trailing targets its
        // own line.
        let target_line = if p.own_line {
            tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > p.line)
                .unwrap_or(p.line)
        } else {
            p.line
        };
        for name in names {
            match Rule::from_id(name) {
                Some(rule) => allows.push(AllowEntry {
                    rule,
                    pragma_line: p.line,
                    target_line,
                }),
                None => emit(
                    Rule::PragmaUnknownRule,
                    format!("allow names unknown rule `{name}`"),
                ),
            }
        }
        return;
    }
    emit(
        Rule::PragmaUnknownRule,
        format!("unrecognized pragma `lint: {}`", p.body),
    );
}

/// Finds the token-index range (inclusive) of the first `{ ... }` block whose
/// opening brace sits on `line` or later.
fn brace_block_from_line(tokens: &[Token], line: u32) -> Option<(usize, usize)> {
    let open = tokens
        .iter()
        .position(|t| t.line >= line && t.text == "{")?;
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, i));
                }
            }
            _ => {}
        }
    }
    None
}

/// Returns a per-token "live" mask with `#[test]`/`#[cfg(test)]`-gated items
/// masked out, plus the masked line ranges (used to drop pragmas in test
/// code).
fn mask_test_items(tokens: &[Token]) -> (Vec<bool>, Vec<std::ops::RangeInclusive<u32>>) {
    let mut live = vec![true; tokens.len()];
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text != "#" || tokens.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        // Collect the attribute body up to the matching `]`.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut gates_test = false;
        let mut negated = false;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "test" => gates_test = true,
                "not" => negated = true,
                _ => {}
            }
            j += 1;
        }
        if !gates_test || negated {
            i = j + 1;
            continue;
        }
        // Mask from the `#` through the end of the gated item: its first
        // brace block, or a `;` if the item has no body.
        let start = i;
        let mut k = j + 1;
        let mut end = tokens.len().saturating_sub(1);
        let mut bdepth = 0usize;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "{" => bdepth += 1,
                "}" => {
                    bdepth -= 1;
                    if bdepth == 0 {
                        end = k;
                        break;
                    }
                }
                ";" if bdepth == 0 => {
                    end = k;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        for slot in &mut live[start..=end] {
            *slot = false;
        }
        ranges.push(tokens[start].line..=tokens[end].line);
        i = end + 1;
    }
    (live, ranges)
}

/// Idents that construct or seed randomness; `rand` itself is matched as a
/// path root (`rand::...`).
const RNG_IDENTS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "StdRng",
    "SmallRng",
    "OsRng",
    "RandomState",
    "getrandom",
];

fn scan_determinism(
    path: &str,
    tokens: &[Token],
    live: &[bool],
    scope: FileScope,
    enabled: &BTreeSet<Rule>,
    out: &mut Vec<Diagnostic>,
) {
    let FileScope {
        rng_exempt,
        par_exempt,
        ..
    } = scope;
    let mut emit = |rule: Rule, line: u32, message: String| {
        if enabled.contains(&rule) {
            out.push(Diagnostic {
                path: path.to_string(),
                line,
                rule,
                message,
            });
        }
    };
    for (i, t) in tokens.iter().enumerate() {
        if !live[i] {
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" => emit(
                Rule::DetHashOrder,
                t.line,
                format!(
                    "{} in simulation code: hash iteration order is \
                     nondeterministic — use BTreeMap/BTreeSet, or justify a \
                     lookup-only map with an allow pragma",
                    t.text
                ),
            ),
            "SystemTime" | "Instant" => emit(
                Rule::DetWallClock,
                t.line,
                format!(
                    "{} in simulation code: wall-clock reads are \
                     irreproducible — derive time from the simulated clock",
                    t.text
                ),
            ),
            // `thread::spawn`/`scope`/`Builder` (paths like `std::thread::scope`
            // land here at the `thread` segment); bare `scope.spawn(..)` inside
            // an already-flagged `thread::scope` block stays quiet — the lint
            // fires once, where the OS thread machinery is entered.
            "thread"
                if !par_exempt
                    && tokens.get(i + 1).map(|n| n.text.as_str()) == Some("::")
                    && matches!(
                        tokens.get(i + 2).map(|n| n.text.as_str()),
                        Some("spawn" | "scope" | "Builder")
                    ) =>
            {
                emit(
                    Rule::DetThreadSpawn,
                    t.line,
                    format!(
                        "thread::{} in simulation code: OS scheduling order is \
                         nondeterministic — route parallelism through the \
                         baton-scheduled harness, or justify with an allow \
                         pragma",
                        tokens[i + 2].text
                    ),
                );
            }
            // Owning a join handle is owning an OS thread: every
            // `JoinHandle` site outside the reserved pool module needs a
            // justified allow, so stray thread ownership cannot hide behind
            // a handle passed in from elsewhere.
            "JoinHandle" if !par_exempt => emit(
                Rule::DetThreadSpawn,
                t.line,
                "JoinHandle in simulation code: owning an OS thread outside \
                 crates/core/src/par.rs — route parallelism through the \
                 deterministic pool, or justify with an allow pragma"
                    .to_string(),
            ),
            "rayon" if !par_exempt && tokens.get(i + 1).map(|n| n.text.as_str()) == Some("::") => {
                emit(
                    Rule::DetThreadSpawn,
                    t.line,
                    "rayon in simulation code: work-stealing order is \
                     nondeterministic — route parallelism through the \
                     baton-scheduled harness"
                        .to_string(),
                );
            }
            name if !rng_exempt
                && (RNG_IDENTS.contains(&name)
                    || (name == "rand"
                        && tokens.get(i + 1).map(|n| n.text.as_str()) == Some("::"))) =>
            {
                emit(
                    Rule::DetStrayRng,
                    t.line,
                    format!(
                        "`{name}` constructs randomness outside \
                         easydram_dram::det — route it through the seeded \
                         DetRng"
                    ),
                );
            }
            _ => {}
        }
    }
}

/// Host-clock idents that must never feed a structured trace record. The
/// wall-clock rule already catches `Instant`/`SystemTime` anywhere in sim
/// code; this list extends coverage to the `Duration` readings a clock
/// produces, which are just as irreproducible as the clock itself.
const CLOCK_IDENTS: &[&str] = &[
    "Instant",
    "SystemTime",
    "Duration",
    "elapsed",
    "as_nanos",
    "as_micros",
    "as_millis",
    "as_secs",
];

/// The structured observability records whose timestamps are part of the
/// determinism contract: they carry emulated picoseconds or cycles, so any
/// host-clock value flowing into a construction makes traces irreproducible.
const OBS_CONSTRUCTORS: &[&str] = &["TraceEvent", "CmdRecord", "QuantumSwitch"];

/// Flags trace-record constructions fed from a host clock. Fires on an
/// [`OBS_CONSTRUCTORS`] ident followed by `::` (constructor call) or `{`
/// (struct literal), with a [`CLOCK_IDENTS`] token in the rest of the
/// statement (lookahead capped, stopping at `;`).
fn scan_obs(
    path: &str,
    tokens: &[Token],
    live: &[bool],
    enabled: &BTreeSet<Rule>,
    out: &mut Vec<Diagnostic>,
) {
    let mut emit = |line: u32, message: String| {
        if enabled.contains(&Rule::ObsEmulatedTimeOnly) {
            out.push(Diagnostic {
                path: path.to_string(),
                line,
                rule: Rule::ObsEmulatedTimeOnly,
                message,
            });
        }
    };
    for (i, t) in tokens.iter().enumerate() {
        if !live[i] || !OBS_CONSTRUCTORS.contains(&t.text.as_str()) {
            continue;
        }
        if !matches!(tokens.get(i + 1).map(|n| n.text.as_str()), Some("::" | "{")) {
            continue;
        }
        for j in (i + 2)..tokens.len().min(i + 2 + 40) {
            if !live[j] {
                continue;
            }
            let tj = tokens[j].text.as_str();
            if tj == ";" {
                break;
            }
            if CLOCK_IDENTS.contains(&tj) {
                emit(
                    t.line,
                    format!(
                        "{} built from host clock `{tj}` — observability \
                         timestamps must be emulated picoseconds or cycles",
                        t.text
                    ),
                );
                break;
            }
        }
    }
}

fn scan_allocations(
    path: &str,
    tokens: &[Token],
    live: &[bool],
    regions: &[(usize, usize)],
    enabled: &BTreeSet<Rule>,
    out: &mut Vec<Diagnostic>,
) {
    let mut emit = |rule: Rule, line: u32, message: String| {
        if enabled.contains(&rule) {
            out.push(Diagnostic {
                path: path.to_string(),
                line,
                rule,
                message,
            });
        }
    };
    let text = |i: usize| tokens.get(i).map_or("", |t: &Token| t.text.as_str());
    for &(start, end) in regions {
        let mut i = start;
        while i <= end.min(tokens.len().saturating_sub(1)) {
            if !live[i] {
                i += 1;
                continue;
            }
            let t0 = text(i);
            let t1 = text(i + 1);
            let t2 = text(i + 2);
            match (t0, t1, t2) {
                ("Vec" | "String", "::", "new" | "with_capacity" | "from") => {
                    let l = tokens[i].line;
                    emit(
                        Rule::AllocVecNew,
                        l,
                        format!("{t0}::{t2} allocates inside a no_alloc region"),
                    );
                    i += 3;
                    continue;
                }
                ("vec" | "format", "!", _) => {
                    let l = tokens[i].line;
                    emit(
                        Rule::AllocVecNew,
                        l,
                        format!("{t0}! allocates inside a no_alloc region"),
                    );
                    i += 2;
                    continue;
                }
                (".", "to_vec" | "to_string" | "to_owned", _) => {
                    let l = tokens[i + 1].line;
                    emit(
                        Rule::AllocVecNew,
                        l,
                        format!(".{t1}() allocates inside a no_alloc region"),
                    );
                    i += 2;
                    continue;
                }
                ("Box" | "Rc" | "Arc", "::", "new" | "leak") => {
                    let l = tokens[i].line;
                    emit(
                        Rule::AllocBoxNew,
                        l,
                        format!("{t0}::{t2} allocates inside a no_alloc region"),
                    );
                    i += 3;
                    continue;
                }
                (".", "clone", "(") => {
                    let l = tokens[i + 1].line;
                    emit(
                        Rule::AllocClone,
                        l,
                        ".clone() allocates inside a no_alloc region".to_string(),
                    );
                    i += 3;
                    continue;
                }
                (".", "collect", _) => {
                    let l = tokens[i + 1].line;
                    emit(
                        Rule::AllocCollect,
                        l,
                        ".collect() allocates inside a no_alloc region".to_string(),
                    );
                    i += 2;
                    continue;
                }
                _ => {}
            }
            i += 1;
        }
    }
}
