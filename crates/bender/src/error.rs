//! Bender error types.

use std::error::Error;
use std::fmt;

/// Errors from building or executing a DRAM Bender program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BenderError {
    /// The program exceeded the command-buffer capacity (paper §5.1 ⑦).
    ProgramTooLong {
        /// The configured capacity in instructions.
        capacity: usize,
    },
    /// More reads were issued than the readback buffer can hold (§5.1 ⑧).
    ReadbackOverflow {
        /// The configured readback capacity in cache lines.
        capacity: usize,
    },
    /// The underlying device rejected a command (out of range coordinates or
    /// a backwards-moving clock).
    Device(String),
}

impl fmt::Display for BenderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenderError::ProgramTooLong { capacity } => {
                write!(
                    f,
                    "program exceeds command buffer capacity of {capacity} instructions"
                )
            }
            BenderError::ReadbackOverflow { capacity } => {
                write!(f, "readback buffer capacity of {capacity} lines exceeded")
            }
            BenderError::Device(msg) => write!(f, "device error: {msg}"),
        }
    }
}

impl Error for BenderError {}

impl From<easydram_dram::DramError> for BenderError {
    fn from(e: easydram_dram::DramError) -> Self {
        BenderError::Device(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(BenderError::ProgramTooLong { capacity: 4 }
            .to_string()
            .contains('4'));
        assert!(BenderError::ReadbackOverflow { capacity: 9 }
            .to_string()
            .contains('9'));
        assert!(BenderError::Device("x".into()).to_string().contains('x'));
    }
}
