//! Cost model for moving programs and data between the programmable core and
//! DRAM Bender.
//!
//! The paper counts "overheads of being coupled with DRAM Bender (e.g.,
//! transferring DRAM commands)" among the latencies that must be considered
//! for realistic system evaluation (§4.2). The Tile Control Logic streams the
//! command buffer into DRAM Bender and drains the readback buffer; we model
//! both as a fixed handshake plus one FPGA clock per element.

/// Transfer-cost model in FPGA (tile-domain) clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransferCost {
    /// Fixed handshake cycles per batch (start + completion interrupt).
    pub batch_overhead_cycles: u64,
    /// Cycles to stream one instruction into the command buffer.
    pub cycles_per_instr: u64,
    /// Cycles to drain one cache line from the readback buffer.
    pub cycles_per_readback_line: u64,
}

impl Default for TransferCost {
    fn default() -> Self {
        Self {
            batch_overhead_cycles: 32,
            cycles_per_instr: 1,
            cycles_per_readback_line: 16,
        }
    }
}

impl TransferCost {
    /// Cycles to ship a program of `n_instrs` into DRAM Bender.
    #[must_use]
    pub fn program_cycles(&self, n_instrs: usize) -> u64 {
        self.batch_overhead_cycles + self.cycles_per_instr * n_instrs as u64
    }

    /// Cycles to drain `n_lines` cache lines of readback data.
    #[must_use]
    pub fn readback_cycles(&self, n_lines: usize) -> u64 {
        self.cycles_per_readback_line * n_lines as u64
    }

    /// Total cycles for a batch with `n_instrs` instructions producing
    /// `n_lines` readback lines.
    #[must_use]
    pub fn batch_cycles(&self, n_instrs: usize, n_lines: usize) -> u64 {
        self.program_cycles(n_instrs) + self.readback_cycles(n_lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_are_monotonic_in_size() {
        let c = TransferCost::default();
        assert!(c.program_cycles(10) > c.program_cycles(1));
        assert!(c.readback_cycles(4) > c.readback_cycles(1));
        assert_eq!(
            c.batch_cycles(3, 2),
            c.program_cycles(3) + c.readback_cycles(2)
        );
    }

    #[test]
    fn empty_batch_still_pays_handshake() {
        let c = TransferCost::default();
        assert_eq!(c.program_cycles(0), c.batch_overhead_cycles);
        assert_eq!(c.readback_cycles(0), 0);
    }
}
