//! The command buffer: a size-limited DRAM Bender program under construction.

use easydram_dram::DramCommand;

use crate::error::BenderError;
use crate::isa::{BenderInstr, IssueAt};

/// Default command-buffer capacity, in instructions.
///
/// The real EasyDRAM command buffer accumulates "multiple DRAM commands
/// before they are issued to the DRAM chip in a timing-preserving batch"
/// (paper §5.1 ⑦); 8192 entries comfortably holds a whole-row sweep.
pub const DEFAULT_CAPACITY: usize = 8_192;

/// A DRAM Bender program being assembled by the software memory controller.
///
/// Build with the `cmd*` methods, then hand to [`crate::Executor::run`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenderProgram {
    instrs: Vec<BenderInstr>,
    capacity: usize,
    reads: usize,
}

impl BenderProgram {
    /// Creates an empty program with [`DEFAULT_CAPACITY`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates an empty program bounded to `capacity` instructions.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            instrs: Vec::new(),
            capacity,
            reads: 0,
        }
    }

    /// Appends `cmd` issued at the earliest JEDEC-legal time.
    ///
    /// # Errors
    ///
    /// Returns [`BenderError::ProgramTooLong`] when the buffer is full.
    pub fn cmd_auto(&mut self, cmd: DramCommand) -> Result<(), BenderError> {
        self.push(BenderInstr::Cmd {
            cmd,
            at: IssueAt::Auto,
        })
    }

    /// Appends `cmd` issued at the earliest legal time (alias of
    /// [`BenderProgram::cmd_auto`], the common case).
    ///
    /// # Errors
    ///
    /// Returns [`BenderError::ProgramTooLong`] when the buffer is full.
    pub fn cmd(&mut self, cmd: DramCommand) -> Result<(), BenderError> {
        self.cmd_auto(cmd)
    }

    /// Appends `cmd` issued exactly `delay_ps` after the previous command —
    /// even when that violates timing rules.
    ///
    /// # Errors
    ///
    /// Returns [`BenderError::ProgramTooLong`] when the buffer is full.
    pub fn cmd_after(&mut self, cmd: DramCommand, delay_ps: u64) -> Result<(), BenderError> {
        self.push(BenderInstr::Cmd {
            cmd,
            at: IssueAt::After(delay_ps),
        })
    }

    /// Appends an idle period of `ps` picoseconds.
    ///
    /// # Errors
    ///
    /// Returns [`BenderError::ProgramTooLong`] when the buffer is full.
    pub fn sleep(&mut self, ps: u64) -> Result<(), BenderError> {
        self.push(BenderInstr::Sleep { ps })
    }

    fn push(&mut self, instr: BenderInstr) -> Result<(), BenderError> {
        if self.instrs.len() >= self.capacity {
            return Err(BenderError::ProgramTooLong {
                capacity: self.capacity,
            });
        }
        if matches!(
            instr,
            BenderInstr::Cmd {
                cmd: DramCommand::Read { .. },
                ..
            }
        ) {
            self.reads += 1;
        }
        self.instrs.push(instr);
        Ok(())
    }

    /// The instructions in program order.
    #[must_use]
    pub fn instrs(&self) -> &[BenderInstr] {
        &self.instrs
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Number of `RD` commands (readback-buffer demand).
    #[must_use]
    pub fn read_count(&self) -> usize {
        self.reads
    }

    /// Empties the buffer for reuse, keeping its capacity.
    pub fn clear(&mut self) {
        self.instrs.clear();
        self.reads = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_counts() {
        let mut p = BenderProgram::new();
        p.cmd(DramCommand::Activate { bank: 0, row: 1 }).unwrap();
        p.cmd_after(DramCommand::Read { bank: 0, col: 0 }, 9_000)
            .unwrap();
        p.sleep(100).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.read_count(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn capacity_enforced() {
        let mut p = BenderProgram::with_capacity(2);
        p.cmd(DramCommand::Refresh).unwrap();
        p.cmd(DramCommand::Refresh).unwrap();
        let err = p.cmd(DramCommand::Refresh).unwrap_err();
        assert_eq!(err, BenderError::ProgramTooLong { capacity: 2 });
    }

    #[test]
    fn clear_resets() {
        let mut p = BenderProgram::with_capacity(4);
        p.cmd(DramCommand::Read { bank: 0, col: 0 }).unwrap();
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.read_count(), 0);
        // Capacity retained.
        for _ in 0..4 {
            p.cmd(DramCommand::Refresh).unwrap();
        }
        assert!(p.cmd(DramCommand::Refresh).is_err());
    }
}
