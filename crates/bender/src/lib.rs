//! DRAM Bender substrate: a small instruction set and executor for issuing
//! DRAM command sequences with exact, user-controlled inter-command delays.
//!
//! EasyDRAM does not drive the DDRx interface from software directly — the
//! programmable core is far too slow (paper §4.2). Instead the software
//! memory controller assembles a *program* of DRAM Bender instructions in a
//! command buffer and hands it to specialized logic that replays it at
//! DRAM-clock granularity ("the delay between each DRAM command in a batch is
//! executed exactly as intended by the EasyDRAM user", §5.1). This crate is
//! that specialized logic.
//!
//! # Example: a RowClone command sequence
//!
//! ```
//! use easydram_bender::{BenderProgram, Executor};
//! use easydram_dram::{DramCommand, DramConfig, DramDevice, VariationConfig};
//!
//! let mut cfg = DramConfig::small_for_tests();
//! cfg.variation = VariationConfig::ideal();
//! let mut dev = DramDevice::new(cfg);
//! dev.write_row(0, 1, &vec![0xAB; 8192]);
//!
//! let mut prog = BenderProgram::new();
//! prog.cmd(DramCommand::Activate { bank: 0, row: 1 })?;   // open source row
//! prog.cmd_after(DramCommand::Precharge { bank: 0 }, 3_000)?; // interrupt it
//! prog.cmd_after(DramCommand::Activate { bank: 0, row: 2 }, 3_000)?; // clone!
//! prog.cmd_auto(DramCommand::Precharge { bank: 0 })?;     // clean close
//!
//! let result = Executor::new().run(&mut dev, &prog, 0)?;
//! assert_eq!(result.rowclones.len(), 1);
//! assert!(result.rowclones[0].success);
//! assert_eq!(dev.row_data(0, 2), vec![0xAB; 8192].as_slice());
//! # Ok::<(), easydram_bender::BenderError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod executor;
pub mod isa;
pub mod program;
pub mod transfer;

pub use error::BenderError;
pub use executor::{BenderResult, Executor};
pub use isa::{BenderInstr, IssueAt};
pub use program::BenderProgram;
pub use transfer::TransferCost;
