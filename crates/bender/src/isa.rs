//! The DRAM Bender instruction set.
//!
//! The real DRAM Bender ISA packs per-DRAM-cycle command slots; we model the
//! subset EasyDRAM uses: issue a DRAM command at a precisely controlled time,
//! or sleep. Time control is the whole point — DRAM techniques are defined by
//! their inter-command delays.

use easydram_dram::DramCommand;

/// When an instruction's command is issued relative to the previous one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IssueAt {
    /// Issue at the earliest time that satisfies every JEDEC timing rule
    /// (never earlier than one DRAM clock after the previous command).
    ///
    /// Used for standard-compliant sequences, e.g. an ordinary read.
    Auto,
    /// Issue exactly `ps` picoseconds after the previous command — even if
    /// that violates timing rules. This is how techniques like RowClone and
    /// reduced-tRCD access are expressed.
    After(u64),
}

/// One DRAM Bender instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BenderInstr {
    /// Issue `cmd` with the given scheduling mode.
    Cmd {
        /// The DRAM command to put on the command bus.
        cmd: DramCommand,
        /// When to issue it.
        at: IssueAt,
    },
    /// Advance the timeline by `ps` picoseconds without issuing anything.
    Sleep {
        /// Idle duration in picoseconds.
        ps: u64,
    },
}

impl BenderInstr {
    /// The DRAM command carried by this instruction, if any.
    #[must_use]
    pub fn command(&self) -> Option<&DramCommand> {
        match self {
            BenderInstr::Cmd { cmd, .. } => Some(cmd),
            BenderInstr::Sleep { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_accessor() {
        let i = BenderInstr::Cmd {
            cmd: DramCommand::Refresh,
            at: IssueAt::Auto,
        };
        assert_eq!(i.command(), Some(&DramCommand::Refresh));
        assert_eq!(BenderInstr::Sleep { ps: 10 }.command(), None);
    }
}
