//! Replays a [`BenderProgram`] against a [`DramDevice`] at DRAM-clock
//! granularity, preserving user-specified delays exactly.

use easydram_dram::{DramDevice, RowCloneOutcome, TimingViolation, LINE_BYTES};

use crate::error::BenderError;
use crate::isa::{BenderInstr, IssueAt};
use crate::program::BenderProgram;

/// Default readback-buffer capacity in cache lines (paper §5.1 ⑧).
pub const DEFAULT_READBACK_CAPACITY: usize = 4_096;

/// Everything a program execution produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenderResult {
    /// Cache lines returned by `RD` commands, in program order (the readback
    /// buffer).
    pub reads: Vec<[u8; LINE_BYTES]>,
    /// Whether each read returned known-corrupt data (parallel to `reads`).
    pub read_corrupted: Vec<bool>,
    /// RowClone attempts recognized during execution.
    pub rowclones: Vec<RowCloneOutcome>,
    /// Every timing violation, in program order.
    pub violations: Vec<TimingViolation>,
    /// Wall-clock duration of the execution in picoseconds, from start to the
    /// completion of the last command's effects. This is the figure DRAM
    /// Bender reports back to the software memory controller so time scaling
    /// can advance the memory-controller cycle counter (paper Fig. 5 ④–⑤).
    pub elapsed_ps: u64,
    /// Absolute device time at which execution finished.
    pub end_ps: u64,
}

/// The DRAM Bender execution engine.
#[derive(Debug, Clone)]
pub struct Executor {
    readback_capacity: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor {
    /// Creates an executor with [`DEFAULT_READBACK_CAPACITY`].
    #[must_use]
    pub fn new() -> Self {
        Self {
            readback_capacity: DEFAULT_READBACK_CAPACITY,
        }
    }

    /// Creates an executor with a custom readback-buffer capacity.
    #[must_use]
    pub fn with_readback_capacity(capacity: usize) -> Self {
        Self {
            readback_capacity: capacity,
        }
    }

    /// Runs `program` on `dev` starting no earlier than `start_ps`.
    ///
    /// `IssueAt::After` delays are honored exactly; `IssueAt::Auto` commands
    /// issue at the earliest JEDEC-legal time (at least one DRAM clock after
    /// the previous command). Execution begins at `max(start_ps, dev.now())`.
    ///
    /// # Errors
    ///
    /// Returns [`BenderError::ReadbackOverflow`] if the program reads more
    /// lines than the readback buffer holds, or [`BenderError::Device`] for
    /// out-of-range coordinates.
    pub fn run(
        &self,
        dev: &mut DramDevice,
        program: &BenderProgram,
        start_ps: u64,
    ) -> Result<BenderResult, BenderError> {
        if program.read_count() > self.readback_capacity {
            return Err(BenderError::ReadbackOverflow {
                capacity: self.readback_capacity,
            });
        }
        let t_ck = dev.timing().t_ck_ps;
        let start = start_ps.max(dev.now_ps());
        let mut cursor = start;
        let mut last_issue: Option<u64> = None;
        let mut end = start;
        let mut result = BenderResult::default();
        for instr in program.instrs() {
            match *instr {
                BenderInstr::Sleep { ps } => {
                    cursor += ps;
                    end = end.max(cursor);
                }
                BenderInstr::Cmd { cmd, at } => {
                    let issue = match at {
                        IssueAt::After(delay) => match last_issue {
                            Some(prev) => prev + delay,
                            None => cursor + delay,
                        },
                        IssueAt::Auto => {
                            let floor = match last_issue {
                                Some(prev) => (prev + t_ck).max(cursor),
                                None => cursor,
                            };
                            dev.earliest_issue_ps(&cmd).max(floor)
                        }
                    };
                    let issue = issue.max(dev.now_ps());
                    let out = dev.issue_raw(cmd, issue)?;
                    result.violations.extend(out.violations.iter().copied());
                    if let Some(data) = out.read_data {
                        result.reads.push(data);
                        result.read_corrupted.push(out.read_corrupted);
                    }
                    if let Some(rc) = out.rowclone {
                        result.rowclones.push(rc);
                    }
                    end = end.max(out.completion_ps);
                    last_issue = Some(issue);
                    cursor = issue;
                    let _ = cmd;
                }
            }
        }
        result.end_ps = end;
        result.elapsed_ps = end - start;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easydram_dram::{DramCommand, DramConfig, TimingParams, TimingRule, VariationConfig};

    fn dev() -> DramDevice {
        DramDevice::new(DramConfig::small_for_tests())
    }

    fn ideal_dev() -> DramDevice {
        let mut cfg = DramConfig::small_for_tests();
        cfg.variation = VariationConfig::ideal();
        DramDevice::new(cfg)
    }

    fn t() -> TimingParams {
        TimingParams::ddr4_1333()
    }

    #[test]
    fn auto_sequence_is_violation_free() {
        let mut d = dev();
        let mut p = BenderProgram::new();
        p.cmd(DramCommand::Activate { bank: 0, row: 5 }).unwrap();
        p.cmd(DramCommand::Read { bank: 0, col: 0 }).unwrap();
        p.cmd(DramCommand::Read { bank: 0, col: 1 }).unwrap();
        p.cmd(DramCommand::Precharge { bank: 0 }).unwrap();
        let r = Executor::new().run(&mut d, &p, 0).unwrap();
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.reads.len(), 2);
        assert!(!r.read_corrupted[0] && !r.read_corrupted[1]);
    }

    #[test]
    fn auto_read_waits_exactly_trcd() {
        let mut d = dev();
        let mut p = BenderProgram::new();
        p.cmd(DramCommand::Activate { bank: 0, row: 5 }).unwrap();
        p.cmd(DramCommand::Read { bank: 0, col: 0 }).unwrap();
        let r = Executor::new().run(&mut d, &p, 0).unwrap();
        // Data completes at tRCD + CL + burst for a closed-row access.
        assert_eq!(r.elapsed_ps, t().closed_row_access_ps());
    }

    #[test]
    fn exact_delays_are_preserved() {
        // The paper's core promise: "the delay between each DRAM command in a
        // batch is executed exactly as intended by the EasyDRAM user".
        let mut d = dev();
        let mut p = BenderProgram::new();
        p.cmd(DramCommand::Activate { bank: 0, row: 5 }).unwrap();
        p.cmd_after(DramCommand::Read { bank: 0, col: 0 }, 9_000)
            .unwrap();
        let r = Executor::new().run(&mut d, &p, 0).unwrap();
        assert!(r.violations.iter().any(|v| v.rule == TimingRule::Trcd));
        let trcd_viol = r
            .violations
            .iter()
            .find(|v| v.rule == TimingRule::Trcd)
            .unwrap();
        assert_eq!(trcd_viol.issued_ps, 9_000);
    }

    #[test]
    fn reduced_trcd_read_through_bender() {
        let mut d = dev();
        let line = [0x42u8; LINE_BYTES];
        d.write_line(0, 1, 0, &line);
        let min = d.variation().line_min_trcd_ps(0, 1, 0);
        let mut p = BenderProgram::new();
        p.cmd(DramCommand::Activate { bank: 0, row: 1 }).unwrap();
        p.cmd_after(DramCommand::Read { bank: 0, col: 0 }, min)
            .unwrap();
        let r = Executor::new().run(&mut d, &p, 0).unwrap();
        assert_eq!(r.reads[0], line);
        assert!(!r.read_corrupted[0]);
    }

    #[test]
    fn rowclone_program_copies_row() {
        let mut d = ideal_dev();
        let pattern: Vec<u8> = (0..8192u32).map(|i| (i * 7 % 256) as u8).collect();
        d.write_row(1, 10, &pattern);
        let mut p = BenderProgram::new();
        p.cmd(DramCommand::Activate { bank: 1, row: 10 }).unwrap();
        p.cmd_after(DramCommand::Precharge { bank: 1 }, 3_000)
            .unwrap();
        p.cmd_after(DramCommand::Activate { bank: 1, row: 11 }, 3_000)
            .unwrap();
        p.cmd_auto(DramCommand::Precharge { bank: 1 }).unwrap();
        let r = Executor::new().run(&mut d, &p, 0).unwrap();
        assert_eq!(r.rowclones.len(), 1);
        assert!(r.rowclones[0].success);
        assert_eq!(d.row_data(1, 11), pattern.as_slice());
    }

    #[test]
    fn sleep_advances_time() {
        let mut d = dev();
        let mut p = BenderProgram::new();
        p.sleep(50_000).unwrap();
        p.cmd_after(DramCommand::Activate { bank: 0, row: 0 }, 0)
            .unwrap();
        let r = Executor::new().run(&mut d, &p, 0).unwrap();
        // ACT issues at 50_000 and completes tRCD later.
        assert_eq!(r.end_ps, 50_000 + t().t_rcd_ps);
    }

    #[test]
    fn start_time_respected_and_elapsed_relative() {
        let mut d = dev();
        let mut p = BenderProgram::new();
        p.cmd(DramCommand::Activate { bank: 0, row: 0 }).unwrap();
        let r = Executor::new().run(&mut d, &p, 1_000_000).unwrap();
        assert_eq!(r.end_ps, 1_000_000 + t().t_rcd_ps);
        assert_eq!(r.elapsed_ps, t().t_rcd_ps);
    }

    #[test]
    fn starts_no_earlier_than_device_time() {
        let mut d = dev();
        d.issue_raw(DramCommand::Refresh, 2_000_000).unwrap();
        let mut p = BenderProgram::new();
        p.cmd(DramCommand::Activate { bank: 0, row: 0 }).unwrap();
        // Ask for start at 0: executor must clamp to device time and tRFC.
        let r = Executor::new().run(&mut d, &p, 0).unwrap();
        assert!(r.end_ps >= 2_000_000 + t().t_rfc_ps);
    }

    #[test]
    fn readback_overflow_detected_before_execution() {
        let mut d = dev();
        let mut p = BenderProgram::new();
        p.cmd(DramCommand::Activate { bank: 0, row: 0 }).unwrap();
        for col in 0..4 {
            p.cmd(DramCommand::Read { bank: 0, col }).unwrap();
        }
        let ex = Executor::with_readback_capacity(2);
        let err = ex.run(&mut d, &p, 0).unwrap_err();
        assert_eq!(err, BenderError::ReadbackOverflow { capacity: 2 });
        // Nothing executed.
        assert_eq!(d.stats().commands(), 0);
    }

    #[test]
    fn device_error_propagates() {
        let mut d = dev();
        let mut p = BenderProgram::new();
        p.cmd(DramCommand::Activate { bank: 99, row: 0 }).unwrap();
        let err = Executor::new().run(&mut d, &p, 0).unwrap_err();
        assert!(matches!(err, BenderError::Device(_)));
    }

    #[test]
    fn empty_program_is_instant() {
        let mut d = dev();
        let r = Executor::new()
            .run(&mut d, &BenderProgram::new(), 500)
            .unwrap();
        assert_eq!(r.elapsed_ps, 0);
        assert!(r.reads.is_empty());
    }

    #[test]
    fn consecutive_auto_commands_at_least_one_clock_apart() {
        let mut d = dev();
        let mut p = BenderProgram::new();
        p.cmd(DramCommand::Activate { bank: 0, row: 0 }).unwrap();
        p.cmd(DramCommand::Activate { bank: 1, row: 0 }).unwrap(); // same group
        let r = Executor::new().run(&mut d, &p, 0).unwrap();
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        // Second ACT at tRRD_L >= t_ck after the first.
        assert!(r.end_ps >= t().t_rrd_l_ps + t().t_rcd_ps);
    }
}
