//! Data-mining kernels: correlation and covariance.

use easydram_cpu::CpuApi;

use crate::polybench::poly_kernel;
use crate::util::{Mat, Vect};
use crate::PolySize;

fn dims(size: PolySize) -> (u64, u64) {
    match size {
        PolySize::Mini => (26, 22), // (N observations, M attributes)
        PolySize::Small => (100, 80),
    }
}

fn covariance_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let (n, m) = dims(size);
    let data = Mat::alloc(cpu, n, m);
    let cov = Mat::alloc(cpu, m, m);
    let mean = Vect::alloc(cpu, m);
    data.init_poly(cpu, 3, 13);
    let float_n = n as f64;
    for j in 0..m {
        let mut acc = 0.0;
        cpu.stream_begin();
        for i in 0..n {
            acc += data.get(cpu, i, j);
            cpu.compute(2);
        }
        cpu.stream_end();
        mean.set(cpu, j, acc / float_n);
        cpu.compute(12);
    }
    for i in 0..n {
        cpu.stream_begin();
        for j in 0..m {
            let v = data.get(cpu, i, j) - mean.get(cpu, j);
            data.set(cpu, i, j, v);
            cpu.compute(3);
        }
        cpu.stream_end();
    }
    for i in 0..m {
        for j in i..m {
            let mut acc = 0.0;
            cpu.stream_begin();
            for k in 0..n {
                acc += data.get(cpu, k, i) * data.get(cpu, k, j);
                cpu.compute(3);
            }
            cpu.stream_end();
            let v = acc / (float_n - 1.0);
            cov.set(cpu, i, j, v);
            cov.set(cpu, j, i, v);
            cpu.compute(13);
        }
    }
    cov.checksum(cpu)
}

fn correlation_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let (n, m) = dims(size);
    let data = Mat::alloc(cpu, n, m);
    let corr = Mat::alloc(cpu, m, m);
    let mean = Vect::alloc(cpu, m);
    let stddev = Vect::alloc(cpu, m);
    data.init_poly(cpu, 3, 13);
    let float_n = n as f64;
    let eps = 0.1;
    for j in 0..m {
        let mut acc = 0.0;
        cpu.stream_begin();
        for i in 0..n {
            acc += data.get(cpu, i, j);
            cpu.compute(2);
        }
        cpu.stream_end();
        mean.set(cpu, j, acc / float_n);
        cpu.compute(12);
    }
    for j in 0..m {
        let mj = mean.get(cpu, j);
        let mut acc = 0.0;
        cpu.stream_begin();
        for i in 0..n {
            let d = data.get(cpu, i, j) - mj;
            acc += d * d;
            cpu.compute(4);
        }
        cpu.stream_end();
        let sd = (acc / float_n).sqrt();
        stddev.set(cpu, j, if sd <= eps { 1.0 } else { sd });
        cpu.compute(25);
    }
    // Center and reduce.
    let sqrt_n = float_n.sqrt();
    for i in 0..n {
        cpu.stream_begin();
        for j in 0..m {
            let v = (data.get(cpu, i, j) - mean.get(cpu, j)) / (sqrt_n * stddev.get(cpu, j));
            data.set(cpu, i, j, v);
            cpu.compute(15);
        }
        cpu.stream_end();
    }
    for i in 0..m {
        corr.set(cpu, i, i, 1.0);
        for j in i + 1..m {
            let mut acc = 0.0;
            cpu.stream_begin();
            for k in 0..n {
                acc += data.get(cpu, k, i) * data.get(cpu, k, j);
                cpu.compute(3);
            }
            cpu.stream_end();
            corr.set(cpu, i, j, acc);
            corr.set(cpu, j, i, acc);
            cpu.compute(2);
        }
    }
    corr.checksum(cpu)
}

poly_kernel!(
    /// `covariance`: covariance matrix of observations.
    Covariance,
    "covariance",
    covariance_body
);
poly_kernel!(
    /// `correlation`: correlation matrix of observations.
    Correlation,
    "correlation",
    correlation_body
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;
    use easydram_cpu::{CoreConfig, CoreModel, FixedLatencyBackend};

    #[test]
    fn correlation_diagonal_is_m() {
        // Sum of an m×m correlation matrix includes m ones on the diagonal;
        // off-diagonals are in [-1, 1], so |checksum| <= m^2.
        let (_, m) = dims(PolySize::Mini);
        let mut w = Correlation::new(PolySize::Mini);
        let mut cpu = CoreModel::new(CoreConfig::cortex_a57(), FixedLatencyBackend::new(50));
        w.run(&mut cpu);
        assert!(w.checksum().is_finite());
        assert!(w.checksum().abs() <= (m * m) as f64);
    }

    #[test]
    fn covariance_is_symmetric_by_construction() {
        let mut w = Covariance::new(PolySize::Mini);
        let mut cpu = CoreModel::new(CoreConfig::cortex_a57(), FixedLatencyBackend::new(50));
        w.run(&mut cpu);
        assert!(w.checksum().is_finite());
    }
}
