//! Stencil kernels.

use easydram_cpu::CpuApi;

use crate::polybench::poly_kernel;
use crate::util::{Mat, Vect};
use crate::PolySize;

fn jacobi1d_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let (n, tsteps) = match size {
        PolySize::Mini => (1_000, 4),
        PolySize::Small => (16_384, 6),
    };
    let a = Vect::alloc(cpu, n);
    let b = Vect::alloc(cpu, n);
    a.init_poly(cpu, 13);
    b.init_poly(cpu, 17);
    for _ in 0..tsteps {
        cpu.stream_begin();
        for i in 1..n - 1 {
            let v = (a.get(cpu, i - 1) + a.get(cpu, i) + a.get(cpu, i + 1)) / 3.0;
            b.set(cpu, i, v);
            cpu.compute(5);
        }
        for i in 1..n - 1 {
            let v = (b.get(cpu, i - 1) + b.get(cpu, i) + b.get(cpu, i + 1)) / 3.0;
            a.set(cpu, i, v);
            cpu.compute(5);
        }
        cpu.stream_end();
    }
    a.checksum(cpu)
}

fn jacobi2d_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let (n, tsteps) = match size {
        PolySize::Mini => (32, 3),
        PolySize::Small => (96, 5),
    };
    let a = Mat::alloc(cpu, n, n);
    let b = Mat::alloc(cpu, n, n);
    a.init_poly(cpu, 3, 13);
    b.init_poly(cpu, 5, 17);
    for _ in 0..tsteps {
        for i in 1..n - 1 {
            cpu.stream_begin();
            for j in 1..n - 1 {
                let v = 0.2
                    * (a.get(cpu, i, j)
                        + a.get(cpu, i, j - 1)
                        + a.get(cpu, i, j + 1)
                        + a.get(cpu, i + 1, j)
                        + a.get(cpu, i - 1, j));
                b.set(cpu, i, j, v);
                cpu.compute(7);
            }
            cpu.stream_end();
        }
        for i in 1..n - 1 {
            cpu.stream_begin();
            for j in 1..n - 1 {
                let v = 0.2
                    * (b.get(cpu, i, j)
                        + b.get(cpu, i, j - 1)
                        + b.get(cpu, i, j + 1)
                        + b.get(cpu, i + 1, j)
                        + b.get(cpu, i - 1, j));
                a.set(cpu, i, j, v);
                cpu.compute(7);
            }
            cpu.stream_end();
        }
    }
    a.checksum(cpu)
}

fn seidel2d_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let (n, tsteps) = match size {
        PolySize::Mini => (32, 3),
        PolySize::Small => (96, 5),
    };
    let a = Mat::alloc(cpu, n, n);
    a.init_poly(cpu, 3, 13);
    for _ in 0..tsteps {
        for i in 1..n - 1 {
            // Gauss-Seidel updates are serially dependent; no streaming.
            for j in 1..n - 1 {
                let v = (a.get(cpu, i - 1, j - 1)
                    + a.get(cpu, i - 1, j)
                    + a.get(cpu, i - 1, j + 1)
                    + a.get(cpu, i, j - 1)
                    + a.get(cpu, i, j)
                    + a.get(cpu, i, j + 1)
                    + a.get(cpu, i + 1, j - 1)
                    + a.get(cpu, i + 1, j)
                    + a.get(cpu, i + 1, j + 1))
                    / 9.0;
                a.set(cpu, i, j, v);
                cpu.compute(12);
            }
        }
    }
    a.checksum(cpu)
}

fn fdtd2d_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let (n, tsteps) = match size {
        PolySize::Mini => (32, 3),
        PolySize::Small => (80, 5),
    };
    let ex = Mat::alloc(cpu, n, n);
    let ey = Mat::alloc(cpu, n, n);
    let hz = Mat::alloc(cpu, n, n);
    ex.init_poly(cpu, 3, 13);
    ey.init_poly(cpu, 5, 17);
    hz.init_poly(cpu, 7, 19);
    for t in 0..tsteps {
        cpu.stream_begin();
        for j in 0..n {
            ey.set(cpu, 0, j, t as f64);
            cpu.compute(2);
        }
        cpu.stream_end();
        for i in 1..n {
            cpu.stream_begin();
            for j in 0..n {
                let v = ey.get(cpu, i, j) - 0.5 * (hz.get(cpu, i, j) - hz.get(cpu, i - 1, j));
                ey.set(cpu, i, j, v);
                cpu.compute(5);
            }
            cpu.stream_end();
        }
        for i in 0..n {
            cpu.stream_begin();
            for j in 1..n {
                let v = ex.get(cpu, i, j) - 0.5 * (hz.get(cpu, i, j) - hz.get(cpu, i, j - 1));
                ex.set(cpu, i, j, v);
                cpu.compute(5);
            }
            cpu.stream_end();
        }
        for i in 0..n - 1 {
            cpu.stream_begin();
            for j in 0..n - 1 {
                let v = hz.get(cpu, i, j)
                    - 0.7
                        * (ex.get(cpu, i, j + 1) - ex.get(cpu, i, j) + ey.get(cpu, i + 1, j)
                            - ey.get(cpu, i, j));
                hz.set(cpu, i, j, v);
                cpu.compute(8);
            }
            cpu.stream_end();
        }
    }
    hz.checksum(cpu)
}

fn heat3d_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let (n, tsteps) = match size {
        PolySize::Mini => (12, 2),
        PolySize::Small => (24, 4),
    };
    // Flatten the n×n×n volumes as (n*n) × n matrices.
    let a = Mat::alloc(cpu, n * n, n);
    let b = Mat::alloc(cpu, n * n, n);
    a.init_poly(cpu, 3, 13);
    b.init_poly(cpu, 5, 17);
    let idx = |i: u64, j: u64| i * n + j;
    for _ in 0..tsteps {
        for (src, dst) in [(&a, &b), (&b, &a)] {
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    cpu.stream_begin();
                    for k in 1..n - 1 {
                        let c = src.get(cpu, idx(i, j), k);
                        let v = 0.125
                            * (src.get(cpu, idx(i + 1, j), k) - 2.0 * c
                                + src.get(cpu, idx(i - 1, j), k))
                            + 0.125
                                * (src.get(cpu, idx(i, j + 1), k) - 2.0 * c
                                    + src.get(cpu, idx(i, j - 1), k))
                            + 0.125
                                * (src.get(cpu, idx(i, j), k + 1) - 2.0 * c
                                    + src.get(cpu, idx(i, j), k - 1))
                            + c;
                        dst.set(cpu, idx(i, j), k, v);
                        cpu.compute(15);
                    }
                    cpu.stream_end();
                }
            }
        }
    }
    a.checksum(cpu)
}

fn adi_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let (n, tsteps) = match size {
        PolySize::Mini => (24, 2),
        PolySize::Small => (48, 3),
    };
    let u = Mat::alloc(cpu, n, n);
    let v = Mat::alloc(cpu, n, n);
    let p = Mat::alloc(cpu, n, n);
    let q = Mat::alloc(cpu, n, n);
    u.init_poly(cpu, 3, 13);
    let nf = n as f64;
    let (dx, dy, dt) = (1.0 / nf, 1.0 / nf, 1.0 / tsteps as f64);
    let b1 = 2.0;
    let b2 = 1.0;
    let mul1 = b1 * dt / (dx * dx);
    let mul2 = b2 * dt / (dy * dy);
    let a_c = -mul1 / 2.0;
    let b_c = 1.0 + mul1;
    let c_c = a_c;
    let d_c = -mul2 / 2.0;
    let e_c = 1.0 + mul2;
    let f_c = d_c;
    for _ in 0..tsteps {
        // Column sweep.
        for i in 1..n - 1 {
            v.set(cpu, 0, i, 1.0);
            p.set(cpu, i, 0, 0.0);
            q.set(cpu, i, 0, 1.0);
            cpu.stream_begin();
            for j in 1..n - 1 {
                let pv = p.get(cpu, i, j - 1);
                let qv = q.get(cpu, i, j - 1);
                let denom = a_c * pv + b_c;
                p.set(cpu, i, j, -c_c / denom);
                let rhs = -d_c * u.get(cpu, j, i - 1) + (1.0 + 2.0 * d_c) * u.get(cpu, j, i)
                    - f_c * u.get(cpu, j, i + 1);
                q.set(cpu, i, j, (rhs - a_c * qv) / denom);
                cpu.compute(22);
            }
            cpu.stream_end();
            v.set(cpu, n - 1, i, 1.0);
            for jj in 1..n - 1 {
                let j = n - 2 - (jj - 1);
                let val = p.get(cpu, i, j) * v.get(cpu, j + 1, i) + q.get(cpu, i, j);
                v.set(cpu, j, i, val);
                cpu.compute(5);
            }
        }
        // Row sweep.
        for i in 1..n - 1 {
            u.set(cpu, i, 0, 1.0);
            p.set(cpu, i, 0, 0.0);
            q.set(cpu, i, 0, 1.0);
            cpu.stream_begin();
            for j in 1..n - 1 {
                let pv = p.get(cpu, i, j - 1);
                let qv = q.get(cpu, i, j - 1);
                let denom = d_c * pv + e_c;
                p.set(cpu, i, j, -f_c / denom);
                let rhs = -a_c * v.get(cpu, i - 1, j) + (1.0 + 2.0 * a_c) * v.get(cpu, i, j)
                    - c_c * v.get(cpu, i + 1, j);
                q.set(cpu, i, j, (rhs - d_c * qv) / denom);
                cpu.compute(22);
            }
            cpu.stream_end();
            u.set(cpu, i, n - 1, 1.0);
            for jj in 1..n - 1 {
                let j = n - 2 - (jj - 1);
                let val = p.get(cpu, i, j) * u.get(cpu, i, j + 1) + q.get(cpu, i, j);
                u.set(cpu, i, j, val);
                cpu.compute(5);
            }
        }
    }
    u.checksum(cpu)
}

poly_kernel!(
    /// `jacobi-1d`: 1-D Jacobi stencil.
    Jacobi1d,
    "jacobi-1d",
    jacobi1d_body
);
poly_kernel!(
    /// `jacobi-2d`: 2-D Jacobi stencil.
    Jacobi2d,
    "jacobi-2d",
    jacobi2d_body
);
poly_kernel!(
    /// `seidel-2d`: 2-D Gauss-Seidel stencil.
    Seidel2d,
    "seidel-2d",
    seidel2d_body
);
poly_kernel!(
    /// `fdtd-2d`: 2-D finite-difference time-domain kernel.
    Fdtd2d,
    "fdtd-2d",
    fdtd2d_body
);
poly_kernel!(
    /// `heat-3d`: 3-D heat equation stencil.
    Heat3d,
    "heat-3d",
    heat3d_body
);
poly_kernel!(
    /// `adi`: alternating-direction implicit solver.
    Adi,
    "adi",
    adi_body
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;
    use easydram_cpu::{CoreConfig, CoreModel, FixedLatencyBackend};

    #[test]
    fn stencils_converge_to_finite_values() {
        for name in [
            "jacobi-1d",
            "jacobi-2d",
            "seidel-2d",
            "fdtd-2d",
            "heat-3d",
            "adi",
        ] {
            let mut cpu = CoreModel::new(CoreConfig::cortex_a57(), FixedLatencyBackend::new(50));
            let mut w = crate::polybench::by_name(name, PolySize::Mini).unwrap();
            w.run(&mut cpu);
            assert!(cpu.now_cycles() > 0, "{name}");
        }
    }

    #[test]
    fn jacobi1d_smooths_towards_mean() {
        let mut w = Jacobi1d::new(PolySize::Mini);
        let mut cpu = CoreModel::new(CoreConfig::cortex_a57(), FixedLatencyBackend::new(50));
        w.run(&mut cpu);
        // Averaging keeps values within the initial [0, 1) range.
        assert!(w.checksum() >= 0.0);
        assert!(w.checksum() <= 1_000.0);
    }
}
