//! BLAS-style PolyBench kernels.

use easydram_cpu::CpuApi;

use crate::polybench::poly_kernel;
use crate::util::{Mat, Vect};
use crate::PolySize;

const ALPHA: f64 = 1.5;
const BETA: f64 = 1.2;

fn cubic_n(size: PolySize) -> u64 {
    match size {
        PolySize::Mini => 20,
        PolySize::Small => 48,
    }
}

fn quadratic_n(size: PolySize) -> u64 {
    match size {
        PolySize::Mini => 64,
        PolySize::Small => 384,
    }
}

fn gemm_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let n = cubic_n(size);
    let a = Mat::alloc(cpu, n, n);
    let b = Mat::alloc(cpu, n, n);
    let c = Mat::alloc(cpu, n, n);
    a.init_poly(cpu, 3, 13);
    b.init_poly(cpu, 5, 17);
    c.init_poly(cpu, 7, 19);
    for i in 0..n {
        for j in 0..n {
            let mut acc = c.get(cpu, i, j) * BETA;
            cpu.stream_begin();
            for k in 0..n {
                acc += ALPHA * a.get(cpu, i, k) * b.get(cpu, k, j);
                cpu.compute(3);
            }
            cpu.stream_end();
            c.set(cpu, i, j, acc);
            cpu.compute(2);
        }
    }
    c.checksum(cpu)
}

fn two_mm_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let n = cubic_n(size);
    let a = Mat::alloc(cpu, n, n);
    let b = Mat::alloc(cpu, n, n);
    let c = Mat::alloc(cpu, n, n);
    let d = Mat::alloc(cpu, n, n);
    let tmp = Mat::alloc(cpu, n, n);
    a.init_poly(cpu, 3, 13);
    b.init_poly(cpu, 5, 17);
    c.init_poly(cpu, 7, 19);
    d.init_poly(cpu, 11, 23);
    // tmp = alpha * A * B
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            cpu.stream_begin();
            for k in 0..n {
                acc += ALPHA * a.get(cpu, i, k) * b.get(cpu, k, j);
                cpu.compute(3);
            }
            cpu.stream_end();
            tmp.set(cpu, i, j, acc);
        }
    }
    // D = tmp * C + beta * D
    for i in 0..n {
        for j in 0..n {
            let mut acc = d.get(cpu, i, j) * BETA;
            cpu.stream_begin();
            for k in 0..n {
                acc += tmp.get(cpu, i, k) * c.get(cpu, k, j);
                cpu.compute(3);
            }
            cpu.stream_end();
            d.set(cpu, i, j, acc);
        }
    }
    d.checksum(cpu)
}

fn three_mm_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let n = cubic_n(size);
    let a = Mat::alloc(cpu, n, n);
    let b = Mat::alloc(cpu, n, n);
    let c = Mat::alloc(cpu, n, n);
    let d = Mat::alloc(cpu, n, n);
    let e = Mat::alloc(cpu, n, n);
    let f = Mat::alloc(cpu, n, n);
    let g = Mat::alloc(cpu, n, n);
    a.init_poly(cpu, 3, 13);
    b.init_poly(cpu, 5, 17);
    c.init_poly(cpu, 7, 19);
    d.init_poly(cpu, 11, 23);
    let mm = |cpu: &mut dyn CpuApi, x: &Mat, y: &Mat, out: &Mat| {
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                cpu.stream_begin();
                for k in 0..n {
                    acc += x.get(cpu, i, k) * y.get(cpu, k, j);
                    cpu.compute(3);
                }
                cpu.stream_end();
                out.set(cpu, i, j, acc);
            }
        }
    };
    mm(cpu, &a, &b, &e); // E = A*B
    mm(cpu, &c, &d, &f); // F = C*D
    mm(cpu, &e, &f, &g); // G = E*F
    g.checksum(cpu)
}

fn gemver_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let n = quadratic_n(size);
    let a = Mat::alloc(cpu, n, n);
    let u1 = Vect::alloc(cpu, n);
    let v1 = Vect::alloc(cpu, n);
    let u2 = Vect::alloc(cpu, n);
    let v2 = Vect::alloc(cpu, n);
    let w = Vect::alloc(cpu, n);
    let x = Vect::alloc(cpu, n);
    let y = Vect::alloc(cpu, n);
    let z = Vect::alloc(cpu, n);
    a.init_poly(cpu, 3, 13);
    u1.init_poly(cpu, 7);
    v1.init_poly(cpu, 11);
    u2.init_poly(cpu, 13);
    v2.init_poly(cpu, 17);
    y.init_poly(cpu, 19);
    z.init_poly(cpu, 23);
    for i in 0..n {
        w.set(cpu, i, 0.0);
        x.set(cpu, i, 0.0);
    }
    // A = A + u1*v1' + u2*v2'
    for i in 0..n {
        let u1i = u1.get(cpu, i);
        let u2i = u2.get(cpu, i);
        cpu.stream_begin();
        for j in 0..n {
            let v = a.get(cpu, i, j) + u1i * v1.get(cpu, j) + u2i * v2.get(cpu, j);
            a.set(cpu, i, j, v);
            cpu.compute(5);
        }
        cpu.stream_end();
    }
    // x = beta * A' * y + z
    for i in 0..n {
        let mut acc = x.get(cpu, i);
        cpu.stream_begin();
        for j in 0..n {
            acc += BETA * a.get(cpu, j, i) * y.get(cpu, j);
            cpu.compute(3);
        }
        cpu.stream_end();
        let zi = z.get(cpu, i);
        x.set(cpu, i, acc + zi);
    }
    // w = alpha * A * x
    for i in 0..n {
        let mut acc = w.get(cpu, i);
        cpu.stream_begin();
        for j in 0..n {
            acc += ALPHA * a.get(cpu, i, j) * x.get(cpu, j);
            cpu.compute(3);
        }
        cpu.stream_end();
        w.set(cpu, i, acc);
    }
    w.checksum(cpu)
}

fn gesummv_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let n = quadratic_n(size);
    let a = Mat::alloc(cpu, n, n);
    let b = Mat::alloc(cpu, n, n);
    let x = Vect::alloc(cpu, n);
    let y = Vect::alloc(cpu, n);
    a.init_poly(cpu, 3, 13);
    b.init_poly(cpu, 5, 17);
    x.init_poly(cpu, 7);
    for i in 0..n {
        let mut t = 0.0;
        let mut yv = 0.0;
        cpu.stream_begin();
        for j in 0..n {
            let xj = x.get(cpu, j);
            t += a.get(cpu, i, j) * xj;
            yv += b.get(cpu, i, j) * xj;
            cpu.compute(5);
        }
        cpu.stream_end();
        y.set(cpu, i, ALPHA * t + BETA * yv);
        cpu.compute(3);
    }
    y.checksum(cpu)
}

fn symm_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let n = cubic_n(size);
    let a = Mat::alloc(cpu, n, n); // symmetric (lower stored)
    let b = Mat::alloc(cpu, n, n);
    let c = Mat::alloc(cpu, n, n);
    a.init_poly(cpu, 3, 13);
    b.init_poly(cpu, 5, 17);
    c.init_poly(cpu, 7, 19);
    for i in 0..n {
        for j in 0..n {
            let bij = b.get(cpu, i, j);
            let mut temp2 = 0.0;
            cpu.stream_begin();
            for k in 0..i {
                let v = c.get(cpu, k, j) + ALPHA * bij * a.get(cpu, i, k);
                c.set(cpu, k, j, v);
                temp2 += b.get(cpu, k, j) * a.get(cpu, i, k);
                cpu.compute(6);
            }
            cpu.stream_end();
            let v = BETA * c.get(cpu, i, j) + ALPHA * bij * a.get(cpu, i, i) + ALPHA * temp2;
            c.set(cpu, i, j, v);
            cpu.compute(5);
        }
    }
    c.checksum(cpu)
}

fn syrk_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let n = cubic_n(size);
    let a = Mat::alloc(cpu, n, n);
    let c = Mat::alloc(cpu, n, n);
    a.init_poly(cpu, 3, 13);
    c.init_poly(cpu, 7, 19);
    for i in 0..n {
        for j in 0..=i {
            let v = c.get(cpu, i, j) * BETA;
            c.set(cpu, i, j, v);
            cpu.compute(2);
        }
        for k in 0..n {
            let aik = a.get(cpu, i, k);
            cpu.stream_begin();
            for j in 0..=i {
                let v = c.get(cpu, i, j) + ALPHA * aik * a.get(cpu, j, k);
                c.set(cpu, i, j, v);
                cpu.compute(4);
            }
            cpu.stream_end();
        }
    }
    c.checksum(cpu)
}

fn syr2k_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let n = cubic_n(size);
    let a = Mat::alloc(cpu, n, n);
    let b = Mat::alloc(cpu, n, n);
    let c = Mat::alloc(cpu, n, n);
    a.init_poly(cpu, 3, 13);
    b.init_poly(cpu, 5, 17);
    c.init_poly(cpu, 7, 19);
    for i in 0..n {
        for j in 0..=i {
            let v = c.get(cpu, i, j) * BETA;
            c.set(cpu, i, j, v);
            cpu.compute(2);
        }
        for k in 0..n {
            let aik = a.get(cpu, i, k);
            let bik = b.get(cpu, i, k);
            cpu.stream_begin();
            for j in 0..=i {
                let v = c.get(cpu, i, j)
                    + a.get(cpu, j, k) * ALPHA * bik
                    + b.get(cpu, j, k) * ALPHA * aik;
                c.set(cpu, i, j, v);
                cpu.compute(7);
            }
            cpu.stream_end();
        }
    }
    c.checksum(cpu)
}

fn trmm_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let n = cubic_n(size);
    let a = Mat::alloc(cpu, n, n); // unit lower triangular
    let b = Mat::alloc(cpu, n, n);
    a.init_poly(cpu, 3, 13);
    b.init_poly(cpu, 5, 17);
    for i in 0..n {
        for j in 0..n {
            let mut acc = b.get(cpu, i, j);
            cpu.stream_begin();
            for k in i + 1..n {
                acc += a.get(cpu, k, i) * b.get(cpu, k, j);
                cpu.compute(3);
            }
            cpu.stream_end();
            b.set(cpu, i, j, ALPHA * acc);
            cpu.compute(2);
        }
    }
    b.checksum(cpu)
}

fn atax_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let n = quadratic_n(size);
    let a = Mat::alloc(cpu, n, n);
    let x = Vect::alloc(cpu, n);
    let y = Vect::alloc(cpu, n);
    let tmp = Vect::alloc(cpu, n);
    a.init_poly(cpu, 3, 13);
    x.init_poly(cpu, 7);
    for i in 0..n {
        y.set(cpu, i, 0.0);
    }
    for i in 0..n {
        let mut acc = 0.0;
        cpu.stream_begin();
        for j in 0..n {
            acc += a.get(cpu, i, j) * x.get(cpu, j);
            cpu.compute(3);
        }
        cpu.stream_end();
        tmp.set(cpu, i, acc);
        let t = acc;
        cpu.stream_begin();
        for j in 0..n {
            let v = y.get(cpu, j) + a.get(cpu, i, j) * t;
            y.set(cpu, j, v);
            cpu.compute(4);
        }
        cpu.stream_end();
    }
    y.checksum(cpu)
}

fn bicg_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let n = quadratic_n(size);
    let a = Mat::alloc(cpu, n, n);
    let s = Vect::alloc(cpu, n);
    let q = Vect::alloc(cpu, n);
    let p = Vect::alloc(cpu, n);
    let r = Vect::alloc(cpu, n);
    a.init_poly(cpu, 3, 13);
    p.init_poly(cpu, 7);
    r.init_poly(cpu, 11);
    for i in 0..n {
        s.set(cpu, i, 0.0);
    }
    for i in 0..n {
        q.set(cpu, i, 0.0);
        let ri = r.get(cpu, i);
        let mut qi = 0.0;
        cpu.stream_begin();
        for j in 0..n {
            let aij = a.get(cpu, i, j);
            let v = s.get(cpu, j) + ri * aij;
            s.set(cpu, j, v);
            qi += aij * p.get(cpu, j);
            cpu.compute(6);
        }
        cpu.stream_end();
        q.set(cpu, i, qi);
    }
    s.checksum(cpu) + q.checksum(cpu)
}

fn mvt_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let n = quadratic_n(size);
    let a = Mat::alloc(cpu, n, n);
    let x1 = Vect::alloc(cpu, n);
    let x2 = Vect::alloc(cpu, n);
    let y1 = Vect::alloc(cpu, n);
    let y2 = Vect::alloc(cpu, n);
    a.init_poly(cpu, 3, 13);
    x1.init_poly(cpu, 7);
    x2.init_poly(cpu, 11);
    y1.init_poly(cpu, 13);
    y2.init_poly(cpu, 17);
    for i in 0..n {
        let mut acc = x1.get(cpu, i);
        cpu.stream_begin();
        for j in 0..n {
            acc += a.get(cpu, i, j) * y1.get(cpu, j);
            cpu.compute(3);
        }
        cpu.stream_end();
        x1.set(cpu, i, acc);
    }
    for i in 0..n {
        let mut acc = x2.get(cpu, i);
        cpu.stream_begin();
        for j in 0..n {
            acc += a.get(cpu, j, i) * y2.get(cpu, j);
            cpu.compute(3);
        }
        cpu.stream_end();
        x2.set(cpu, i, acc);
    }
    x1.checksum(cpu) + x2.checksum(cpu)
}

fn doitgen_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let (nr, nq, np) = match size {
        PolySize::Mini => (10, 10, 10),
        PolySize::Small => (20, 20, 20),
    };
    // A is nr x nq x np, flattened as a matrix of nr*nq rows.
    let a = Mat::alloc(cpu, nr * nq, np);
    let c4 = Mat::alloc(cpu, np, np);
    let sum = Vect::alloc(cpu, np);
    a.init_poly(cpu, 3, 13);
    c4.init_poly(cpu, 5, 17);
    for r in 0..nr {
        for q in 0..nq {
            let row = r * nq + q;
            for p in 0..np {
                let mut acc = 0.0;
                cpu.stream_begin();
                for s in 0..np {
                    acc += a.get(cpu, row, s) * c4.get(cpu, s, p);
                    cpu.compute(3);
                }
                cpu.stream_end();
                sum.set(cpu, p, acc);
            }
            cpu.stream_begin();
            for p in 0..np {
                let v = sum.get(cpu, p);
                a.set(cpu, row, p, v);
                cpu.compute(2);
            }
            cpu.stream_end();
        }
    }
    a.checksum(cpu)
}

poly_kernel!(
    /// `gemm`: C = alpha·A·B + beta·C.
    Gemm,
    "gemm",
    gemm_body
);
poly_kernel!(
    /// `2mm`: D = alpha·A·B·C + beta·D.
    Two2mm,
    "2mm",
    two_mm_body
);
poly_kernel!(
    /// `3mm`: G = (A·B)·(C·D).
    Three3mm,
    "3mm",
    three_mm_body
);
poly_kernel!(
    /// `gemver`: vector multiplication and matrix addition.
    Gemver,
    "gemver",
    gemver_body
);
poly_kernel!(
    /// `gesummv`: scalar, vector and matrix multiplication.
    Gesummv,
    "gesummv",
    gesummv_body
);
poly_kernel!(
    /// `symm`: symmetric matrix multiplication.
    Symm,
    "symm",
    symm_body
);
poly_kernel!(
    /// `syrk`: symmetric rank-k update.
    Syrk,
    "syrk",
    syrk_body
);
poly_kernel!(
    /// `syr2k`: symmetric rank-2k update.
    Syr2k,
    "syr2k",
    syr2k_body
);
poly_kernel!(
    /// `trmm`: triangular matrix multiplication.
    Trmm,
    "trmm",
    trmm_body
);
poly_kernel!(
    /// `atax`: Aᵀ·A·x.
    Atax,
    "atax",
    atax_body
);
poly_kernel!(
    /// `bicg`: BiCG sub-kernel of BiCGStab.
    Bicg,
    "bicg",
    bicg_body
);
poly_kernel!(
    /// `mvt`: matrix-vector product and transpose.
    Mvt,
    "mvt",
    mvt_body
);
poly_kernel!(
    /// `doitgen`: multi-resolution analysis kernel.
    Doitgen,
    "doitgen",
    doitgen_body
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;
    use easydram_cpu::{CoreConfig, CoreModel, FixedLatencyBackend};

    fn run(w: &mut dyn Workload) -> (u64, u64) {
        let mut cpu = CoreModel::new(CoreConfig::cortex_a57(), FixedLatencyBackend::new(50));
        w.run(&mut cpu);
        (cpu.now_cycles(), cpu.instructions_retired())
    }

    #[test]
    fn gemm_checksum_is_finite_and_nonzero() {
        let mut g = Gemm::new(PolySize::Mini);
        run(&mut g);
        assert!(g.checksum().is_finite());
        assert!(g.checksum().abs() > 1e-9);
    }

    #[test]
    fn small_is_bigger_than_mini() {
        let mut a = Gemm::new(PolySize::Mini);
        let (_, i1) = run(&mut a);
        let mut b = Gemm::new(PolySize::Small);
        let (_, i2) = run(&mut b);
        assert!(i2 > i1 * 5);
    }

    #[test]
    fn memory_bound_kernels_touch_memory() {
        let mut cpu = CoreModel::new(CoreConfig::cortex_a57(), FixedLatencyBackend::new(50));
        let mut w = Gemver::new(PolySize::Small);
        w.run(&mut cpu);
        assert!(
            cpu.stats().mem_reads > 1000,
            "gemver(small) must stream past the caches"
        );
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index loops mirror the math
    fn gemm_matches_reference_math() {
        // Cross-check the simulated kernel against host arithmetic.
        let n = 20usize;
        let f = |scale: u64, modulus: u64, i: usize, j: usize| {
            ((i as u64 * scale + j as u64) % modulus) as f64 / modulus as f64
        };
        let mut c_ref = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = f(7, 19, i, j) * BETA;
                for k in 0..n {
                    acc += ALPHA * f(3, 13, i, k) * f(5, 17, k, j);
                }
                c_ref[i][j] = acc;
            }
        }
        let expect: f64 = c_ref.iter().flatten().sum();
        let mut g = Gemm::new(PolySize::Mini);
        run(&mut g);
        assert!(
            (g.checksum() - expect).abs() < 1e-6,
            "{} vs {expect}",
            g.checksum()
        );
    }
}
