//! Linear-algebra solver kernels.

use easydram_cpu::CpuApi;

use crate::polybench::poly_kernel;
use crate::util::{Mat, Vect};
use crate::PolySize;

fn cubic_n(size: PolySize) -> u64 {
    match size {
        PolySize::Mini => 20,
        PolySize::Small => 48,
    }
}

/// Initializes a symmetric positive-definite matrix (diagonally dominant).
fn init_spd(cpu: &mut dyn CpuApi, a: &Mat) {
    let n = a.rows;
    cpu.stream_begin();
    for i in 0..n {
        for j in 0..n {
            let v = if i == j {
                n as f64 + 1.0
            } else {
                let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                ((lo * 3 + hi) % 11) as f64 / 22.0
            };
            a.set(cpu, i, j, v);
        }
    }
    cpu.stream_end();
    cpu.fence();
}

fn cholesky_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let n = cubic_n(size);
    let a = Mat::alloc(cpu, n, n);
    init_spd(cpu, &a);
    for i in 0..n {
        for j in 0..i {
            let mut v = a.get(cpu, i, j);
            cpu.stream_begin();
            for k in 0..j {
                v -= a.get(cpu, i, k) * a.get(cpu, j, k);
                cpu.compute(3);
            }
            cpu.stream_end();
            let v = v / a.get(cpu, j, j);
            a.set(cpu, i, j, v);
            cpu.compute(12); // division
        }
        let mut v = a.get(cpu, i, i);
        cpu.stream_begin();
        for k in 0..i {
            let aik = a.get(cpu, i, k);
            v -= aik * aik;
            cpu.compute(3);
        }
        cpu.stream_end();
        a.set(cpu, i, i, v.sqrt());
        cpu.compute(20); // square root
    }
    a.checksum(cpu)
}

fn durbin_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let n = match size {
        PolySize::Mini => 64,
        PolySize::Small => 256,
    };
    // Small working set by design: the paper singles out durbin as the
    // least memory-intensive workload (0.01 LLC misses per kilo cycle).
    let r = Vect::alloc(cpu, n);
    let y = Vect::alloc(cpu, n);
    let z = Vect::alloc(cpu, n);
    cpu.stream_begin();
    for i in 0..n {
        r.set(cpu, i, 0.1 + (i % 7) as f64 * 0.05);
    }
    cpu.stream_end();
    let mut alpha = -r.get(cpu, 0);
    let mut beta = 1.0;
    y.set(cpu, 0, alpha);
    for k in 1..n {
        beta *= 1.0 - alpha * alpha;
        cpu.compute(4);
        let mut sum = 0.0;
        cpu.stream_begin();
        for i in 0..k {
            sum += r.get(cpu, k - i - 1) * y.get(cpu, i);
            cpu.compute(4);
        }
        cpu.stream_end();
        alpha = -(r.get(cpu, k) + sum) / beta;
        cpu.compute(14);
        cpu.stream_begin();
        for i in 0..k {
            let v = y.get(cpu, i) + alpha * y.get(cpu, k - i - 1);
            z.set(cpu, i, v);
            cpu.compute(4);
        }
        for i in 0..k {
            let v = z.get(cpu, i);
            y.set(cpu, i, v);
            cpu.compute(2);
        }
        cpu.stream_end();
        y.set(cpu, k, alpha);
    }
    y.checksum(cpu)
}

fn gramschmidt_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let n = cubic_n(size);
    let a = Mat::alloc(cpu, n, n);
    let q = Mat::alloc(cpu, n, n);
    let r = Mat::alloc(cpu, n, n);
    // Diagonal-dominant init keeps the factorization well-conditioned.
    init_spd(cpu, &a);
    // R's strict lower triangle is never written by the kernel, but the
    // final checksum reads the whole matrix — and on a real DRAM chip,
    // unwritten rows hold power-on garbage, not zeros.
    cpu.stream_begin();
    for i in 0..n {
        for j in 0..n {
            r.set(cpu, i, j, 0.0);
        }
    }
    cpu.stream_end();
    cpu.fence();
    for k in 0..n {
        let mut nrm = 0.0;
        cpu.stream_begin();
        for i in 0..n {
            let v = a.get(cpu, i, k);
            nrm += v * v;
            cpu.compute(3);
        }
        cpu.stream_end();
        let rkk = nrm.sqrt();
        r.set(cpu, k, k, rkk);
        cpu.compute(20);
        cpu.stream_begin();
        for i in 0..n {
            let v = a.get(cpu, i, k) / rkk;
            q.set(cpu, i, k, v);
            cpu.compute(12);
        }
        cpu.stream_end();
        for j in k + 1..n {
            let mut acc = 0.0;
            cpu.stream_begin();
            for i in 0..n {
                acc += q.get(cpu, i, k) * a.get(cpu, i, j);
                cpu.compute(3);
            }
            cpu.stream_end();
            r.set(cpu, k, j, acc);
            cpu.stream_begin();
            for i in 0..n {
                let v = a.get(cpu, i, j) - q.get(cpu, i, k) * acc;
                a.set(cpu, i, j, v);
                cpu.compute(4);
            }
            cpu.stream_end();
        }
    }
    r.checksum(cpu) + q.checksum(cpu)
}

fn lu_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let n = cubic_n(size);
    let a = Mat::alloc(cpu, n, n);
    init_spd(cpu, &a);
    for i in 0..n {
        for j in 0..i {
            let mut v = a.get(cpu, i, j);
            cpu.stream_begin();
            for k in 0..j {
                v -= a.get(cpu, i, k) * a.get(cpu, k, j);
                cpu.compute(3);
            }
            cpu.stream_end();
            let v = v / a.get(cpu, j, j);
            a.set(cpu, i, j, v);
            cpu.compute(12);
        }
        for j in i..n {
            let mut v = a.get(cpu, i, j);
            cpu.stream_begin();
            for k in 0..i {
                v -= a.get(cpu, i, k) * a.get(cpu, k, j);
                cpu.compute(3);
            }
            cpu.stream_end();
            a.set(cpu, i, j, v);
        }
    }
    a.checksum(cpu)
}

fn ludcmp_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let n = cubic_n(size);
    let a = Mat::alloc(cpu, n, n);
    let b = Vect::alloc(cpu, n);
    let x = Vect::alloc(cpu, n);
    let y = Vect::alloc(cpu, n);
    init_spd(cpu, &a);
    b.init_poly(cpu, 7);
    // LU factorization (same loop nest as `lu`).
    for i in 0..n {
        for j in 0..i {
            let mut v = a.get(cpu, i, j);
            cpu.stream_begin();
            for k in 0..j {
                v -= a.get(cpu, i, k) * a.get(cpu, k, j);
                cpu.compute(3);
            }
            cpu.stream_end();
            let v = v / a.get(cpu, j, j);
            a.set(cpu, i, j, v);
            cpu.compute(12);
        }
        for j in i..n {
            let mut v = a.get(cpu, i, j);
            cpu.stream_begin();
            for k in 0..i {
                v -= a.get(cpu, i, k) * a.get(cpu, k, j);
                cpu.compute(3);
            }
            cpu.stream_end();
            a.set(cpu, i, j, v);
        }
    }
    // Forward substitution.
    for i in 0..n {
        let mut v = b.get(cpu, i);
        cpu.stream_begin();
        for j in 0..i {
            v -= a.get(cpu, i, j) * y.get(cpu, j);
            cpu.compute(3);
        }
        cpu.stream_end();
        y.set(cpu, i, v);
    }
    // Backward substitution.
    for ii in 0..n {
        let i = n - 1 - ii;
        let mut v = y.get(cpu, i);
        cpu.stream_begin();
        for j in i + 1..n {
            v -= a.get(cpu, i, j) * x.get(cpu, j);
            cpu.compute(3);
        }
        cpu.stream_end();
        let aii = a.get(cpu, i, i);
        x.set(cpu, i, v / aii);
        cpu.compute(12);
    }
    x.checksum(cpu)
}

fn trisolv_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let n = match size {
        PolySize::Mini => 64,
        PolySize::Small => 384,
    };
    let l = Mat::alloc(cpu, n, n);
    let x = Vect::alloc(cpu, n);
    let b = Vect::alloc(cpu, n);
    init_spd(cpu, &l);
    b.init_poly(cpu, 7);
    for i in 0..n {
        let mut v = b.get(cpu, i);
        cpu.stream_begin();
        for j in 0..i {
            v -= l.get(cpu, i, j) * x.get(cpu, j);
            cpu.compute(3);
        }
        cpu.stream_end();
        let lii = l.get(cpu, i, i);
        x.set(cpu, i, v / lii);
        cpu.compute(12);
    }
    x.checksum(cpu)
}

poly_kernel!(
    /// `cholesky`: Cholesky decomposition of an SPD matrix.
    Cholesky,
    "cholesky",
    cholesky_body
);
poly_kernel!(
    /// `durbin`: Toeplitz system solver (the paper's least memory-intensive
    /// workload).
    Durbin,
    "durbin",
    durbin_body
);
poly_kernel!(
    /// `gramschmidt`: QR decomposition by modified Gram-Schmidt.
    Gramschmidt,
    "gramschmidt",
    gramschmidt_body
);
poly_kernel!(
    /// `lu`: LU decomposition without pivoting.
    Lu,
    "lu",
    lu_body
);
poly_kernel!(
    /// `ludcmp`: LU decomposition followed by forward/backward substitution.
    Ludcmp,
    "ludcmp",
    ludcmp_body
);
poly_kernel!(
    /// `trisolv`: triangular solver.
    Trisolv,
    "trisolv",
    trisolv_body
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;
    use easydram_cpu::{CoreConfig, CoreModel, FixedLatencyBackend};

    fn run(w: &mut dyn Workload) -> u64 {
        let mut cpu = CoreModel::new(CoreConfig::cortex_a57(), FixedLatencyBackend::new(50));
        w.run(&mut cpu);
        cpu.stats().mem_reads
    }

    #[test]
    fn cholesky_stays_finite() {
        let mut w = Cholesky::new(PolySize::Mini);
        run(&mut w);
        assert!(w.checksum().is_finite(), "SPD init must keep sqrt real");
    }

    #[test]
    fn durbin_is_cache_resident() {
        let mut w = Durbin::new(PolySize::Small);
        let mem_reads = run(&mut w);
        assert!(w.checksum().is_finite());
        // Working set ~6 KiB: after warmup virtually no memory traffic.
        assert!(
            mem_reads < 200,
            "durbin should stay in cache, saw {mem_reads} reads"
        );
    }

    #[test]
    fn solvers_produce_finite_checksums() {
        for name in ["gramschmidt", "lu", "ludcmp", "trisolv"] {
            let mut w = crate::polybench::by_name(name, PolySize::Mini).unwrap();
            let mut cpu = CoreModel::new(CoreConfig::cortex_a57(), FixedLatencyBackend::new(50));
            w.run(&mut cpu);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index loops mirror the math
    fn trisolv_solves_the_system() {
        // L x = b with our init; verify residual on the host.
        let n = 64usize;
        let f = |i: usize, j: usize| {
            if i == j {
                n as f64 + 1.0
            } else {
                let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                ((lo * 3 + hi) % 11) as f64 / 22.0
            }
        };
        let b = |i: usize| (i % 7) as f64 / 7.0;
        let mut x = vec![0.0f64; n];
        for i in 0..n {
            let mut v = b(i);
            for j in 0..i {
                v -= f(i, j) * x[j];
            }
            x[i] = v / f(i, i);
        }
        let expect: f64 = x.iter().sum();
        let mut w = Trisolv::new(PolySize::Mini);
        let mut cpu = CoreModel::new(CoreConfig::cortex_a57(), FixedLatencyBackend::new(50));
        w.run(&mut cpu);
        assert!((w.checksum() - expect).abs() < 1e-9);
    }
}
