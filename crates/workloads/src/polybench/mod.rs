//! The PolyBench kernel suite (28 kernels), miniaturized for execution-driven
//! emulation (see `DESIGN.md` for the size-substitution note).
//!
//! Kernels follow the PolyBench/C 4.2 reference algorithms; data sizes are
//! selected per kernel so the suite spans the same cache-behaviour classes
//! as the paper's evaluation: L1-resident (`durbin`), L2-resident, and
//! memory-streaming (`gemver`, `mvt`) working sets.

pub mod blas;
pub mod datamining;
pub mod medley;
pub mod solvers;
pub mod stencils;

use crate::{PolySize, Workload};

pub use blas::{
    Atax, Bicg, Doitgen, Gemm, Gemver, Gesummv, Mvt, Symm, Syr2k, Syrk, Three3mm, Trmm, Two2mm,
};
pub use datamining::{Correlation, Covariance};
pub use medley::FloydWarshall;
pub use solvers::{Cholesky, Durbin, Gramschmidt, Lu, Ludcmp, Trisolv};
pub use stencils::{Adi, Fdtd2d, Heat3d, Jacobi1d, Jacobi2d, Seidel2d};

/// All 28 kernel names, in a stable order.
#[must_use]
pub fn all_names() -> [&'static str; 28] {
    [
        "2mm",
        "3mm",
        "adi",
        "atax",
        "bicg",
        "cholesky",
        "correlation",
        "covariance",
        "doitgen",
        "durbin",
        "fdtd-2d",
        "floyd-warshall",
        "gemm",
        "gemver",
        "gesummv",
        "gramschmidt",
        "heat-3d",
        "jacobi-1d",
        "jacobi-2d",
        "lu",
        "ludcmp",
        "mvt",
        "seidel-2d",
        "symm",
        "syr2k",
        "syrk",
        "trisolv",
        "trmm",
    ]
}

/// Constructs a kernel by its [`all_names`] name.
#[must_use]
pub fn by_name(name: &str, size: PolySize) -> Option<Box<dyn Workload>> {
    let w: Box<dyn Workload> = match name {
        "2mm" => Box::new(Two2mm::new(size)),
        "3mm" => Box::new(Three3mm::new(size)),
        "adi" => Box::new(Adi::new(size)),
        "atax" => Box::new(Atax::new(size)),
        "bicg" => Box::new(Bicg::new(size)),
        "cholesky" => Box::new(Cholesky::new(size)),
        "correlation" => Box::new(Correlation::new(size)),
        "covariance" => Box::new(Covariance::new(size)),
        "doitgen" => Box::new(Doitgen::new(size)),
        "durbin" => Box::new(Durbin::new(size)),
        "fdtd-2d" => Box::new(Fdtd2d::new(size)),
        "floyd-warshall" => Box::new(FloydWarshall::new(size)),
        "gemm" => Box::new(Gemm::new(size)),
        "gemver" => Box::new(Gemver::new(size)),
        "gesummv" => Box::new(Gesummv::new(size)),
        "gramschmidt" => Box::new(Gramschmidt::new(size)),
        "heat-3d" => Box::new(Heat3d::new(size)),
        "jacobi-1d" => Box::new(Jacobi1d::new(size)),
        "jacobi-2d" => Box::new(Jacobi2d::new(size)),
        "lu" => Box::new(Lu::new(size)),
        "ludcmp" => Box::new(Ludcmp::new(size)),
        "mvt" => Box::new(Mvt::new(size)),
        "seidel-2d" => Box::new(Seidel2d::new(size)),
        "symm" => Box::new(Symm::new(size)),
        "syr2k" => Box::new(Syr2k::new(size)),
        "syrk" => Box::new(Syrk::new(size)),
        "trisolv" => Box::new(Trisolv::new(size)),
        "trmm" => Box::new(Trmm::new(size)),
        _ => return None,
    };
    Some(w)
}

/// Declares a PolyBench kernel wrapper struct around a body function.
macro_rules! poly_kernel {
    ($(#[$doc:meta])* $ty:ident, $name:literal, $body:path) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $ty {
            size: $crate::PolySize,
            checksum: f64,
        }

        impl $ty {
            /// Creates the kernel at the given problem size.
            #[must_use]
            pub fn new(size: $crate::PolySize) -> Self {
                Self { size, checksum: f64::NAN }
            }

            /// Checksum of the kernel outputs after `run` (keeps the
            /// computation observable and guards against dead code).
            #[must_use]
            pub fn checksum(&self) -> f64 {
                self.checksum
            }
        }

        impl $crate::Workload for $ty {
            fn name(&self) -> &str {
                $name
            }

            fn run(&mut self, cpu: &mut dyn easydram_cpu::CpuApi) {
                self.checksum = $body(self.size, cpu);
            }

            fn result_checksum(&self) -> Option<f64> {
                self.checksum.is_finite().then_some(self.checksum)
            }
        }
    };
}
pub(crate) use poly_kernel;

#[cfg(test)]
mod tests {
    use super::*;
    use easydram_cpu::{CoreConfig, CoreModel, CpuApi, FixedLatencyBackend};

    #[test]
    fn registry_is_complete_and_closed() {
        for name in all_names() {
            let w = by_name(name, PolySize::Mini).expect("every name constructs");
            assert_eq!(w.name(), name);
        }
        assert!(by_name("nonexistent", PolySize::Mini).is_none());
    }

    #[test]
    fn every_kernel_runs_and_produces_finite_work() {
        for name in all_names() {
            let mut cpu = CoreModel::new(CoreConfig::cortex_a57(), FixedLatencyBackend::new(50));
            let mut w = by_name(name, PolySize::Mini).unwrap();
            w.run(&mut cpu);
            assert!(cpu.now_cycles() > 0, "{name} consumed no time");
            assert!(
                cpu.instructions_retired() > 100,
                "{name} retired too little"
            );
        }
    }

    #[test]
    fn kernels_are_deterministic() {
        for name in ["gemm", "durbin", "correlation"] {
            let run = || {
                let mut cpu =
                    CoreModel::new(CoreConfig::cortex_a57(), FixedLatencyBackend::new(50));
                let mut w = by_name(name, PolySize::Mini).unwrap();
                w.run(&mut cpu);
                cpu.now_cycles()
            };
            assert_eq!(run(), run(), "{name} not deterministic");
        }
    }
}
