//! Medley kernels.

use easydram_cpu::CpuApi;

use crate::polybench::poly_kernel;
use crate::util::Mat;
use crate::PolySize;

fn floyd_warshall_body(size: PolySize, cpu: &mut dyn CpuApi) -> f64 {
    let n = match size {
        PolySize::Mini => 24,
        PolySize::Small => 56,
    };
    let path = Mat::alloc(cpu, n, n);
    // PolyBench init: path[i][j] = i*j % 7 + ((i+j) % 13 == 0 ? 999 : 1).
    cpu.stream_begin();
    for i in 0..n {
        for j in 0..n {
            let base = (i * j % 7 + 1) as f64;
            let v = if (i + j) % 13 == 0 || i == j {
                base
            } else {
                base + 999.0
            };
            path.set(cpu, i, j, if i == j { 0.0 } else { v });
        }
    }
    cpu.stream_end();
    cpu.fence();
    for k in 0..n {
        for i in 0..n {
            let pik = path.get(cpu, i, k);
            cpu.stream_begin();
            for j in 0..n {
                let through = pik + path.get(cpu, k, j);
                let direct = path.get(cpu, i, j);
                if through < direct {
                    path.set(cpu, i, j, through);
                }
                cpu.compute(5);
            }
            cpu.stream_end();
        }
    }
    path.checksum(cpu)
}

poly_kernel!(
    /// `floyd-warshall`: all-pairs shortest paths.
    FloydWarshall,
    "floyd-warshall",
    floyd_warshall_body
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;
    use easydram_cpu::{CoreConfig, CoreModel, FixedLatencyBackend};

    #[test]
    fn shortest_paths_shrink() {
        let mut w = FloydWarshall::new(PolySize::Mini);
        let mut cpu = CoreModel::new(CoreConfig::cortex_a57(), FixedLatencyBackend::new(50));
        w.run(&mut cpu);
        // All-pairs shortest paths over positive weights: finite, non-negative.
        assert!(w.checksum().is_finite());
        assert!(w.checksum() >= 0.0);
    }
}
