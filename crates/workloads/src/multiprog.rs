//! Multi-programmed workload sets for shared-tile interference studies.
//!
//! A co-run pairs (or quads) independent workloads, one per core of a
//! multi-core shared-tile system (`easydram::MultiCoreSystem`). This module
//! provides:
//!
//! * [`StreamWriter`] — a bandwidth aggressor: streaming stores sweeping a
//!   larger-than-LLC buffer, generating a continuous fill-read + writeback
//!   stream until a target emulated runtime is reached;
//! * [`by_name`] — one registry over *all* workload families (PolyBench,
//!   lmbench, copy/init microbenchmarks, and the aggressor), so harnesses
//!   can co-run any pair by name;
//! * [`co_run_set`] — builds a named multi-programmed set.

use easydram_cpu::CpuApi;
use easydram_dram::{DramConfig, MappingScheme};

use crate::hammer::{HammerKernel, HammerPattern};
use crate::{lmbench::LatMemRd, micro, polybench, PolySize, Workload};

/// A streaming-store bandwidth aggressor.
///
/// Sweeps an allocation of `bytes` with line-stride stores under streaming
/// MSHR overlap, repeatedly, until the core has emulated `target_cycles`
/// since the run started (at least one full pass always executes). Each
/// sweep misses the write-allocate caches end to end, so the memory system
/// sees a continuous fill-read plus writeback stream — the classic co-run
/// aggressor for latency-sensitive victims.
#[derive(Debug, Clone)]
pub struct StreamWriter {
    bytes: u64,
    target_cycles: u64,
    pace_ops: u64,
    passes: u64,
    measured: Option<u64>,
}

impl StreamWriter {
    /// Creates an aggressor sweeping `bytes` (rounded up to whole lines)
    /// until `target_cycles` emulated cycles have elapsed, storing as fast
    /// as the MSHRs allow (an elastic aggressor: it expands into whatever
    /// bandwidth the memory system offers).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is smaller than one cache line.
    #[must_use]
    pub fn new(bytes: u64, target_cycles: u64) -> Self {
        Self::paced(bytes, target_cycles, 0)
    }

    /// Like [`StreamWriter::new`], but rate-paced: the writer spends
    /// `pace_ops` ALU operations between consecutive stores, modeling a
    /// fixed-bandwidth streamer (a DMA-style producer) instead of an
    /// elastic one. The shipped contention study co-runs the *elastic*
    /// writer; the paced variant is the knob for sweeping interference as
    /// a function of aggressor bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is smaller than one cache line.
    #[must_use]
    pub fn paced(bytes: u64, target_cycles: u64, pace_ops: u64) -> Self {
        assert!(bytes >= 64, "the sweep needs at least one cache line");
        Self {
            bytes,
            target_cycles,
            pace_ops,
            passes: 0,
            measured: None,
        }
    }

    /// Full sweeps completed during the last run.
    #[must_use]
    pub fn passes(&self) -> u64 {
        self.passes
    }
}

impl Workload for StreamWriter {
    fn name(&self) -> &str {
        "stream-writer"
    }

    fn run(&mut self, cpu: &mut dyn CpuApi) {
        let lines = self.bytes.div_ceil(64);
        let base = cpu.alloc(lines * 64, 64);
        let t0 = cpu.now_cycles();
        self.passes = 0;
        loop {
            cpu.stream_begin();
            for i in 0..lines {
                cpu.store_u64(base + i * 64, i ^ self.passes);
                if self.pace_ops > 0 {
                    cpu.compute(self.pace_ops);
                }
            }
            cpu.stream_end();
            self.passes += 1;
            if cpu.now_cycles() - t0 >= self.target_cycles {
                break;
            }
        }
        cpu.fence();
        self.measured = Some(cpu.now_cycles() - t0);
    }

    fn measured_cycles(&self) -> Option<u64> {
        self.measured
    }
}

/// Default working set of the named `lat_mem_rd` chase: comfortably beyond
/// the 512 KiB LLC, so every dependent load goes to memory.
pub const CHASE_BYTES: u64 = 2 * 1024 * 1024;

/// Default byte sweep of the named `stream-writer` aggressor.
pub const WRITER_BYTES: u64 = 2 * 1024 * 1024;

/// Default emulated-cycle budget of the named `stream-writer` aggressor.
pub const WRITER_TARGET_CYCLES: u64 = 20_000_000;

/// Bank the named hammer kernels attack (channel 0).
pub const HAMMER_BANK: u32 = 0;

/// Victim row of the named hammer kernels: high in the small test
/// geometry's bank, far above the bump allocator's working region, so a
/// co-running victim workload's heap never collides with the attack rows.
pub const HAMMER_VICTIM_ROW: u32 = 900;

/// Activations per aggressor the named hammer kernels issue.
pub const HAMMER_ITERATIONS: u64 = 2_000;

/// The named hammer kernels plan against the small test rig
/// (`DramConfig::small_for_tests` geometry, the default `RowColBankXor`
/// mapping); attack studies on other rigs build [`HammerKernel::in_bank`]
/// explicitly.
fn hammer_by_pattern(pattern: HammerPattern) -> Box<dyn Workload> {
    Box::new(HammerKernel::in_bank(
        &DramConfig::small_for_tests().geometry,
        MappingScheme::RowColBankXor,
        HAMMER_BANK,
        HAMMER_VICTIM_ROW,
        pattern,
        HAMMER_ITERATIONS,
    ))
}

/// Builds any workload of the suite by name: all 28 PolyBench kernels (at
/// `size`), `lat_mem_rd`, `cpu-copy`, `cpu-init`, `stream-writer`, and the
/// RowHammer attack kernels `hammer-single` / `hammer-double` /
/// `hammer-many` (at their default shapes). `None` for unknown names.
#[must_use]
pub fn by_name(name: &str, size: PolySize) -> Option<Box<dyn Workload>> {
    match name {
        "lat_mem_rd" => Some(Box::new(LatMemRd::new(CHASE_BYTES, 64))),
        "cpu-copy" => Some(Box::new(micro::CpuCopy::new(256 * 1024))),
        "cpu-init" => Some(Box::new(micro::CpuInit::new(256 * 1024))),
        "stream-writer" => Some(Box::new(StreamWriter::new(
            WRITER_BYTES,
            WRITER_TARGET_CYCLES,
        ))),
        "hammer-single" => Some(hammer_by_pattern(HammerPattern::SingleSided)),
        "hammer-double" => Some(hammer_by_pattern(HammerPattern::DoubleSided)),
        "hammer-many" => Some(hammer_by_pattern(HammerPattern::ManySided(6))),
        _ => polybench::by_name(name, size),
    }
}

/// Builds a multi-programmed set — one workload per core — from names.
/// Any pair/quad mixing PolyBench, lmbench, and micro workloads works.
/// `None` if any name is unknown.
#[must_use]
pub fn co_run_set(names: &[&str], size: PolySize) -> Option<Vec<Box<dyn Workload>>> {
    names.iter().map(|n| by_name(n, size)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use easydram_cpu::{CoreConfig, CoreModel, FixedLatencyBackend};

    #[test]
    fn stream_writer_runs_to_its_cycle_target() {
        let mut cpu = CoreModel::new(CoreConfig::cortex_a57(), FixedLatencyBackend::new(100));
        let mut w = StreamWriter::new(64 * 1024, 500_000);
        w.run(&mut cpu);
        assert!(w.passes() >= 1);
        assert!(w.measured_cycles().unwrap() >= 500_000);
    }

    #[test]
    fn pacing_throttles_the_store_rate() {
        // Same cycle budget: the paced writer must complete fewer sweeps
        // than the elastic one.
        let run = |pace| {
            let mut cpu = CoreModel::new(CoreConfig::cortex_a57(), FixedLatencyBackend::new(100));
            let mut w = StreamWriter::paced(64 * 1024, 500_000, pace);
            w.run(&mut cpu);
            w.passes()
        };
        let elastic = run(0);
        let paced = run(256);
        assert!(
            paced < elastic,
            "pacing must throttle the sweep rate: {paced} vs {elastic}"
        );
        assert!(paced >= 1, "at least one full sweep always executes");
    }

    #[test]
    fn registry_spans_every_family() {
        for name in [
            "gemm",
            "lat_mem_rd",
            "cpu-copy",
            "cpu-init",
            "stream-writer",
            "hammer-single",
            "hammer-double",
            "hammer-many",
        ] {
            assert!(by_name(name, PolySize::Mini).is_some(), "{name} missing");
        }
        assert!(by_name("nonexistent", PolySize::Mini).is_none());
    }

    #[test]
    fn hammer_co_run_set_builds_attacker_victim_pairs() {
        let pair = co_run_set(&["hammer-double", "lat_mem_rd"], PolySize::Mini).unwrap();
        assert_eq!(pair.len(), 2);
        assert_eq!(pair[0].name(), "hammer-double");
    }

    #[test]
    fn co_run_sets_build_pairs_and_quads() {
        let pair = co_run_set(&["lat_mem_rd", "stream-writer"], PolySize::Mini).unwrap();
        assert_eq!(pair.len(), 2);
        let quad = co_run_set(&["gemm", "mvt", "lat_mem_rd", "cpu-copy"], PolySize::Mini).unwrap();
        assert_eq!(quad.len(), 4);
        assert!(co_run_set(&["gemm", "bogus"], PolySize::Mini).is_none());
    }
}
