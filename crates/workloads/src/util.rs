//! Shared helpers for writing kernels against [`CpuApi`]: typed array views
//! over simulated memory and deterministic initialization.

use easydram_cpu::CpuApi;

/// A dense row-major `f64` matrix living in simulated memory.
#[derive(Debug, Clone, Copy)]
pub struct Mat {
    base: u64,
    /// Number of rows.
    pub rows: u64,
    /// Number of columns.
    pub cols: u64,
}

impl Mat {
    /// Allocates an uninitialized `rows × cols` matrix.
    pub fn alloc(cpu: &mut dyn CpuApi, rows: u64, cols: u64) -> Self {
        let base = cpu.alloc(rows * cols * 8, 64);
        Self { base, rows, cols }
    }

    /// Address of element `(i, j)`.
    #[must_use]
    pub fn addr(&self, i: u64, j: u64) -> u64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.base + (i * self.cols + j) * 8
    }

    /// Loads element `(i, j)`.
    pub fn get(&self, cpu: &mut dyn CpuApi, i: u64, j: u64) -> f64 {
        cpu.load_f64(self.addr(i, j))
    }

    /// Stores element `(i, j)`.
    pub fn set(&self, cpu: &mut dyn CpuApi, i: u64, j: u64, v: f64) {
        cpu.store_f64(self.addr(i, j), v);
    }

    /// Fills the matrix with the PolyBench-style deterministic pattern
    /// `f(i, j) = ((i * scale + j) % mod) / mod`.
    pub fn init_poly(&self, cpu: &mut dyn CpuApi, scale: u64, modulus: u64) {
        cpu.stream_begin();
        for i in 0..self.rows {
            for j in 0..self.cols {
                let v = ((i * scale + j) % modulus) as f64 / modulus as f64;
                self.set(cpu, i, j, v);
            }
        }
        cpu.stream_end();
        cpu.fence();
    }

    /// Sums all elements (host-visible checksum; charges load time).
    pub fn checksum(&self, cpu: &mut dyn CpuApi) -> f64 {
        let mut acc = 0.0;
        cpu.stream_begin();
        for i in 0..self.rows {
            for j in 0..self.cols {
                acc += self.get(cpu, i, j);
            }
        }
        cpu.stream_end();
        acc
    }
}

/// A dense `f64` vector in simulated memory.
#[derive(Debug, Clone, Copy)]
pub struct Vect {
    base: u64,
    /// Number of elements.
    pub len: u64,
}

impl Vect {
    /// Allocates an uninitialized vector.
    pub fn alloc(cpu: &mut dyn CpuApi, len: u64) -> Self {
        let base = cpu.alloc(len * 8, 64);
        Self { base, len }
    }

    /// Address of element `i`.
    #[must_use]
    pub fn addr(&self, i: u64) -> u64 {
        debug_assert!(i < self.len);
        self.base + i * 8
    }

    /// Loads element `i`.
    pub fn get(&self, cpu: &mut dyn CpuApi, i: u64) -> f64 {
        cpu.load_f64(self.addr(i))
    }

    /// Stores element `i`.
    pub fn set(&self, cpu: &mut dyn CpuApi, i: u64, v: f64) {
        cpu.store_f64(self.addr(i), v);
    }

    /// Fills with `f(i) = (i % mod) / mod`.
    pub fn init_poly(&self, cpu: &mut dyn CpuApi, modulus: u64) {
        cpu.stream_begin();
        for i in 0..self.len {
            self.set(cpu, i, (i % modulus) as f64 / modulus as f64);
        }
        cpu.stream_end();
        cpu.fence();
    }

    /// Sums all elements.
    pub fn checksum(&self, cpu: &mut dyn CpuApi) -> f64 {
        let mut acc = 0.0;
        cpu.stream_begin();
        for i in 0..self.len {
            acc += self.get(cpu, i);
        }
        cpu.stream_end();
        acc
    }
}

/// Deterministic 64-bit pattern for microbenchmark payloads.
#[must_use]
pub fn pattern_word(i: u64) -> u64 {
    i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5115_AD5E_ED15_EA5E
}

#[cfg(test)]
mod tests {
    use super::*;
    use easydram_cpu::{CoreConfig, CoreModel, FixedLatencyBackend};

    fn cpu() -> CoreModel<FixedLatencyBackend> {
        CoreModel::new(CoreConfig::cortex_a57(), FixedLatencyBackend::new(50))
    }

    #[test]
    fn mat_round_trip() {
        let mut c = cpu();
        let m = Mat::alloc(&mut c, 4, 5);
        m.set(&mut c, 2, 3, 1.25);
        assert_eq!(m.get(&mut c, 2, 3), 1.25);
        assert_eq!(m.addr(0, 1) - m.addr(0, 0), 8);
        assert_eq!(m.addr(1, 0) - m.addr(0, 0), 40);
    }

    #[test]
    fn init_and_checksum_deterministic() {
        let mut c1 = cpu();
        let mut c2 = cpu();
        let m1 = Mat::alloc(&mut c1, 8, 8);
        let m2 = Mat::alloc(&mut c2, 8, 8);
        m1.init_poly(&mut c1, 3, 17);
        m2.init_poly(&mut c2, 3, 17);
        assert_eq!(m1.checksum(&mut c1), m2.checksum(&mut c2));
    }

    #[test]
    fn vect_round_trip() {
        let mut c = cpu();
        let v = Vect::alloc(&mut c, 10);
        v.init_poly(&mut c, 7);
        assert_eq!(v.get(&mut c, 0), 0.0);
        assert!(v.checksum(&mut c) > 0.0);
    }

    #[test]
    fn pattern_words_differ() {
        assert_ne!(pattern_word(0), pattern_word(1));
        assert_eq!(pattern_word(5), pattern_word(5));
    }
}
