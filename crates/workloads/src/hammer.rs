//! RowHammer attack kernels with a built-in victim-row integrity checker.
//!
//! Each kernel is an ordinary [`CpuApi`] program — the attacker code a real
//! RowHammer study runs on the evaluated platform. It (1) writes a
//! deterministic pattern into a victim row and flushes it to DRAM, (2)
//! hammers the aggressor rows with load + `clflush` pairs so every access
//! re-activates the row, and (3) reads the victim back and counts flipped
//! bits. The three classic shapes are provided:
//!
//! * **single-sided** — one aggressor adjacent to the victim, alternated
//!   with a far decoy row of the same bank (under an open-page controller a
//!   lone aggressor would stay row-buffer-resident and never re-activate);
//! * **double-sided** — both rows adjacent to the victim, the strongest
//!   classic pattern;
//! * **many-sided** — `n` aggressors surrounding the victim (TRRespass-style
//!   spray), exercising the full ±2 blast radius.
//!
//! Row placement is computed from the target system's
//! [`Geometry`]/[`MappingScheme`] via [`HammerPlan::in_bank`], so the same
//! kernel drives any rig.

use easydram_cpu::CpuApi;
use easydram_dram::det::hash_coords;
use easydram_dram::{AddressMapper, DramAddress, Geometry, MappingScheme};

use crate::Workload;

/// Which aggressor shape the kernel hammers with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HammerPattern {
    /// One adjacent aggressor plus a far same-bank decoy row.
    SingleSided,
    /// Both rows adjacent to the victim.
    DoubleSided,
    /// `n` aggressors closest to the victim (±1, ±2, then a same-bank
    /// spray), capped at 8.
    ManySided(u32),
}

impl HammerPattern {
    fn label(self) -> &'static str {
        match self {
            HammerPattern::SingleSided => "hammer-single",
            HammerPattern::DoubleSided => "hammer-double",
            HammerPattern::ManySided(_) => "hammer-many",
        }
    }
}

/// The physical-address plan of one attack: where to hammer and which lines
/// to integrity-check.
#[derive(Debug, Clone)]
pub struct HammerPlan {
    /// Physical line address (column 0) of each aggressor row, in hammer
    /// order.
    pub aggressors: Vec<u64>,
    /// Physical line addresses of the victim row (every cache line).
    pub victim_lines: Vec<u64>,
}

impl HammerPlan {
    /// Plans an attack on `victim_row` of `bank` (channel 0) for a system
    /// with the given geometry and mapping scheme.
    ///
    /// # Panics
    ///
    /// Panics if the victim sits too close to the bank edge for the chosen
    /// pattern, or outside the geometry.
    #[must_use]
    pub fn in_bank(
        geometry: &Geometry,
        scheme: MappingScheme,
        bank: u32,
        victim_row: u32,
        pattern: HammerPattern,
    ) -> Self {
        let mapper = AddressMapper::new(geometry.clone(), scheme);
        let row_addr = |row: u32| mapper.to_phys(DramAddress::new(bank, row, 0));
        let aggressors = match pattern {
            HammerPattern::SingleSided => {
                // The decoy forces a row conflict on every aggressor access;
                // it sits far outside the blast radius so only the ±1
                // neighborhood of the aggressor is disturbed.
                let decoy = if victim_row + 64 < geometry.rows_per_bank {
                    victim_row + 64
                } else {
                    victim_row - 64
                };
                vec![row_addr(victim_row + 1), row_addr(decoy)]
            }
            HammerPattern::DoubleSided => {
                vec![row_addr(victim_row - 1), row_addr(victim_row + 1)]
            }
            HammerPattern::ManySided(n) => {
                let n = n.clamp(2, 8);
                let mut rows = vec![
                    victim_row - 1,
                    victim_row + 1,
                    victim_row - 2,
                    victim_row + 2,
                ];
                // Beyond the blast radius the spray adds activation pressure
                // on the bank without disturbing this victim further.
                let mut d = 3;
                while (rows.len() as u32) < n {
                    rows.push(victim_row + d);
                    d += 1;
                }
                rows.truncate(n as usize);
                rows.into_iter().map(row_addr).collect()
            }
        };
        let victim_lines = (0..geometry.cols_per_row())
            .map(|col| mapper.to_phys(DramAddress::new(bank, victim_row, col)))
            .collect();
        Self {
            aggressors,
            victim_lines,
        }
    }
}

/// Deterministic victim-fill word for `(line, word)` — routed through the
/// shared [`easydram_dram::det`] hashing so runs reproduce everywhere.
fn victim_word(line: u64, word: u64) -> u64 {
    hash_coords(0xEA5D_11A3, b"hammer-victim", &[line, word])
}

/// The attack/integrity workload.
#[derive(Debug, Clone)]
pub struct HammerKernel {
    plan: HammerPlan,
    pattern: HammerPattern,
    iterations: u64,
    bit_flips: Option<u64>,
    measured_cycles: Option<u64>,
}

impl HammerKernel {
    /// Creates a kernel hammering each aggressor of `plan` `iterations`
    /// times (one activation per aggressor per iteration).
    ///
    /// # Panics
    ///
    /// Panics if the plan has no aggressors or `iterations` is zero.
    #[must_use]
    pub fn new(plan: HammerPlan, pattern: HammerPattern, iterations: u64) -> Self {
        assert!(!plan.aggressors.is_empty(), "an attack needs aggressors");
        assert!(iterations > 0, "an attack needs at least one activation");
        Self {
            plan,
            pattern,
            iterations,
            bit_flips: None,
            measured_cycles: None,
        }
    }

    /// Convenience: plan and build in one step.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid inputs as [`HammerPlan::in_bank`] and
    /// [`HammerKernel::new`].
    #[must_use]
    pub fn in_bank(
        geometry: &Geometry,
        scheme: MappingScheme,
        bank: u32,
        victim_row: u32,
        pattern: HammerPattern,
        iterations: u64,
    ) -> Self {
        Self::new(
            HammerPlan::in_bank(geometry, scheme, bank, victim_row, pattern),
            pattern,
            iterations,
        )
    }

    /// Victim bits flipped by the attack, once run. 0 means the device (or
    /// an installed mitigation) held.
    #[must_use]
    pub fn bit_flips(&self) -> Option<u64> {
        self.bit_flips
    }

    /// Activations issued per aggressor row.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.iterations
    }
}

impl Workload for HammerKernel {
    fn name(&self) -> &str {
        self.pattern.label()
    }

    fn run(&mut self, cpu: &mut dyn CpuApi) {
        // 1) Seed the victim row and push it to DRAM.
        cpu.stream_begin();
        for (li, &line) in self.plan.victim_lines.iter().enumerate() {
            for w in 0..8u64 {
                cpu.store_u64(line + w * 8, victim_word(li as u64, w));
            }
        }
        cpu.stream_end();
        for &line in &self.plan.victim_lines {
            cpu.clflush(line);
        }
        cpu.fence();

        // 2) The hammer loop: every access misses the cache (the line is
        // flushed right after the load) and conflicts in the row buffer
        // (aggressors alternate), so each one costs a full ACT.
        let t0 = cpu.now_cycles();
        for _ in 0..self.iterations {
            for &aggr in &self.plan.aggressors {
                let _ = cpu.load_u64(aggr);
                cpu.clflush(aggr);
            }
        }
        cpu.fence();
        self.measured_cycles = Some(cpu.now_cycles() - t0);

        // 3) Integrity check: the victim lines were never cached since the
        // fence, so these loads read the (possibly disturbed) DRAM array.
        let mut flips = 0u64;
        for (li, &line) in self.plan.victim_lines.iter().enumerate() {
            for w in 0..8u64 {
                let got = cpu.load_u64(line + w * 8);
                flips += u64::from((got ^ victim_word(li as u64, w)).count_ones());
            }
        }
        self.bit_flips = Some(flips);
    }

    fn measured_cycles(&self) -> Option<u64> {
        self.measured_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easydram_cpu::{CoreConfig, CoreModel, FixedLatencyBackend};
    use easydram_dram::DramConfig;

    fn small() -> Geometry {
        DramConfig::small_for_tests().geometry
    }

    #[test]
    fn plans_target_the_right_rows() {
        let g = small();
        let scheme = MappingScheme::RowBankCol;
        let mapper = AddressMapper::new(g.clone(), scheme);
        let plan = HammerPlan::in_bank(&g, scheme, 0, 100, HammerPattern::DoubleSided);
        let rows: Vec<u32> = plan
            .aggressors
            .iter()
            .map(|&a| mapper.to_dram(a).row)
            .collect();
        assert_eq!(rows, vec![99, 101]);
        assert_eq!(plan.victim_lines.len() as u32, g.cols_per_row());
        assert!(plan
            .victim_lines
            .iter()
            .all(|&v| mapper.to_dram(v).row == 100 && mapper.to_dram(v).bank == 0));
    }

    #[test]
    fn single_sided_brings_a_far_decoy() {
        let g = small();
        let scheme = MappingScheme::RowColBankXor;
        let mapper = AddressMapper::new(g.clone(), scheme);
        let plan = HammerPlan::in_bank(&g, scheme, 1, 100, HammerPattern::SingleSided);
        let rows: Vec<u32> = plan
            .aggressors
            .iter()
            .map(|&a| mapper.to_dram(a).row)
            .collect();
        assert_eq!(rows, vec![101, 164]);
        assert!(
            plan.aggressors.iter().all(|&a| mapper.to_dram(a).bank == 1),
            "decoy stays in the bank"
        );
    }

    #[test]
    fn many_sided_covers_the_blast_radius() {
        let g = small();
        let scheme = MappingScheme::RowBankCol;
        let mapper = AddressMapper::new(g.clone(), scheme);
        let plan = HammerPlan::in_bank(&g, scheme, 0, 200, HammerPattern::ManySided(6));
        let rows: Vec<u32> = plan
            .aggressors
            .iter()
            .map(|&a| mapper.to_dram(a).row)
            .collect();
        assert_eq!(rows, vec![199, 201, 198, 202, 203, 204]);
    }

    #[test]
    fn kernel_reports_zero_flips_on_an_undisturbed_backend() {
        // FixedLatencyBackend is a plain memory: whatever the hammer loop
        // does, the victim pattern must read back intact.
        let mut cpu = CoreModel::new(CoreConfig::cortex_a57(), FixedLatencyBackend::new(100));
        let g = small();
        let mut k = HammerKernel::in_bank(
            &g,
            MappingScheme::RowBankCol,
            0,
            100,
            HammerPattern::DoubleSided,
            50,
        );
        k.run(&mut cpu);
        assert_eq!(k.bit_flips(), Some(0));
        assert!(k.measured_cycles().unwrap() > 0);
        assert_eq!(k.name(), "hammer-double");
    }
}
