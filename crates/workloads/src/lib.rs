//! Workloads for the EasyDRAM reproduction: the PolyBench kernel suite,
//! an lmbench-style memory-latency benchmark, and the Copy/Init RowClone
//! microbenchmarks from the paper's case studies.
//!
//! Every workload is an execution-driven program over
//! [`easydram_cpu::CpuApi`]: the same kernel source runs unchanged on the
//! EasyDRAM system, the Ramulator baseline, and plain test memories, exactly
//! as the paper runs identical binaries on each evaluated platform.
//!
//! # Example
//!
//! ```
//! use easydram_cpu::{CoreConfig, CoreModel, FixedLatencyBackend};
//! use easydram_workloads::{polybench, PolySize, Workload};
//!
//! let mut cpu = CoreModel::new(CoreConfig::cortex_a57(), FixedLatencyBackend::new(100));
//! let mut gemm = polybench::Gemm::new(PolySize::Mini);
//! gemm.run(&mut cpu);
//! assert!(gemm.checksum().is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hammer;
pub mod lmbench;
pub mod micro;
pub mod multiprog;
pub mod polybench;
pub mod util;

pub use easydram_cpu::Workload;
pub use hammer::{HammerKernel, HammerPattern, HammerPlan};
pub use multiprog::StreamWriter;

/// Problem-size class for PolyBench kernels.
///
/// Sizes are miniaturized relative to PolyBench/C's `LARGE` dataset so that
/// full-workload emulation completes in seconds on a host machine; the cache
/// behaviour classes (L1-resident, L2-resident, memory-streaming) are
/// preserved. See `DESIGN.md` for the substitution note.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PolySize {
    /// Fast unit-test size.
    #[default]
    Mini,
    /// Evaluation size used by the figure harnesses.
    Small,
}

/// The 11 PolyBench workloads of the paper's Fig. 13/14 (tRCD reduction and
/// simulation-speed studies), in figure order.
#[must_use]
pub fn fig13_names() -> Vec<&'static str> {
    vec![
        "gemver",
        "mvt",
        "gesummv",
        "syrk",
        "symm",
        "correlation",
        "covariance",
        "trisolv",
        "gramschmidt",
        "gemm",
        "durbin",
    ]
}

/// Builds the 11 kernels of [`fig13_names`] at the given size.
#[must_use]
pub fn fig13_suite(size: PolySize) -> Vec<Box<dyn Workload>> {
    fig13_names()
        .into_iter()
        .map(|n| polybench::by_name(n, size).expect("fig13 kernel exists"))
        .collect()
}

/// The 28-kernel PolyBench suite used for the paper's §6 time-scaling
/// validation.
#[must_use]
pub fn validation_suite(size: PolySize) -> Vec<Box<dyn Workload>> {
    polybench::all_names()
        .iter()
        .map(|n| polybench::by_name(n, size).expect("kernel exists"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_suite_has_eleven_kernels() {
        let suite = fig13_suite(PolySize::Mini);
        assert_eq!(suite.len(), 11);
        let names: Vec<&str> = suite.iter().map(|w| w.name()).collect();
        assert!(names.contains(&"durbin"));
        assert!(names.contains(&"correlation"));
    }

    #[test]
    fn validation_suite_has_28_kernels() {
        assert_eq!(validation_suite(PolySize::Mini).len(), 28);
    }

    #[test]
    fn fig13_is_subset_of_validation() {
        let all = polybench::all_names();
        for n in fig13_names() {
            assert!(all.contains(&n), "{n} missing from suite");
        }
    }
}
