//! An lmbench `lat_mem_rd`-style memory-latency microbenchmark (paper §6,
//! Fig. 8).
//!
//! Builds a pointer chain of the requested working-set size and chases it
//! with dependent loads; the reported metric is *cycles per load
//! instruction*, which plateaus at the L1, L2, and main-memory latency as
//! the working set grows — exactly the profile Fig. 8 plots.

use easydram_cpu::CpuApi;

use crate::Workload;

/// The memory-read-latency benchmark.
#[derive(Debug, Clone)]
pub struct LatMemRd {
    size_bytes: u64,
    stride_bytes: u64,
    measured_loads: u64,
    measured_cycles: Option<u64>,
    cycles_per_load: Option<f64>,
}

impl LatMemRd {
    /// Creates a benchmark over a `size_bytes` working set chased at
    /// `stride_bytes` (lmbench's default stride is one cache line).
    ///
    /// # Panics
    ///
    /// Panics if the stride is smaller than 8 bytes or the size smaller than
    /// one stride.
    #[must_use]
    pub fn new(size_bytes: u64, stride_bytes: u64) -> Self {
        assert!(stride_bytes >= 8, "stride must hold a pointer");
        assert!(
            size_bytes >= stride_bytes,
            "working set must hold at least one element"
        );
        Self {
            size_bytes,
            stride_bytes,
            measured_loads: 0,
            measured_cycles: None,
            cycles_per_load: None,
        }
    }

    /// Cycles per dependent load over the measured region, once run.
    #[must_use]
    pub fn cycles_per_load(&self) -> Option<f64> {
        self.cycles_per_load
    }

    /// Number of dependent loads in the measured region.
    #[must_use]
    pub fn loads(&self) -> u64 {
        self.measured_loads
    }
}

impl Workload for LatMemRd {
    fn name(&self) -> &str {
        "lat_mem_rd"
    }

    fn run(&mut self, cpu: &mut dyn CpuApi) {
        let n = self.size_bytes / self.stride_bytes;
        let base = cpu.alloc(self.size_bytes, 64);
        // Build the chain: element i points to element i+1, last wraps to 0.
        // (lmbench walks a strided chain; with no prefetcher in the model a
        // forward stride measures raw dependent-load latency.)
        cpu.stream_begin();
        for i in 0..n {
            let next = (i + 1) % n;
            cpu.store_u64(
                base + i * self.stride_bytes,
                base + next * self.stride_bytes,
            );
        }
        cpu.stream_end();
        cpu.fence();
        // Warmup pass: populate caches to steady state.
        let mut p = base;
        for _ in 0..n {
            p = cpu.load_u64(p);
        }
        // Measured region: chase the chain with dependent loads.
        let loads = (2 * n).max(1_024);
        let t0 = cpu.now_cycles();
        for _ in 0..loads {
            p = cpu.load_u64(p);
        }
        let dt = cpu.now_cycles() - t0;
        // Keep `p` live so the chain cannot be optimized away conceptually.
        assert!(p >= base);
        self.measured_loads = loads;
        self.measured_cycles = Some(dt);
        self.cycles_per_load = Some(dt as f64 / loads as f64);
    }

    fn measured_cycles(&self) -> Option<u64> {
        self.measured_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easydram_cpu::{CoreConfig, CoreModel, FixedLatencyBackend};

    fn run_at(size: u64) -> f64 {
        let mut cpu = CoreModel::new(CoreConfig::cortex_a57(), FixedLatencyBackend::new(150));
        let mut w = LatMemRd::new(size, 64);
        w.run(&mut cpu);
        w.cycles_per_load().unwrap()
    }

    #[test]
    fn l1_resident_latency_is_l1_hit() {
        let cpl = run_at(8 * 1024); // fits in 32 KiB L1
        assert!((4.0..=7.0).contains(&cpl), "L1 cycles/load {cpl}");
    }

    #[test]
    fn l2_resident_latency_is_l2_hit() {
        let cpl = run_at(128 * 1024); // beyond L1, within 512 KiB L2
        assert!((15.0..=30.0).contains(&cpl), "L2 cycles/load {cpl}");
    }

    #[test]
    fn memory_resident_latency_is_memory() {
        let cpl = run_at(4 * 1024 * 1024); // far beyond L2
        assert!(cpl > 100.0, "memory cycles/load {cpl}");
    }

    #[test]
    fn latency_profile_is_monotonic_across_plateaus() {
        let l1 = run_at(4 * 1024);
        let l2 = run_at(256 * 1024);
        let mem = run_at(4 * 1024 * 1024);
        assert!(l1 < l2 && l2 < mem, "{l1} {l2} {mem}");
    }

    #[test]
    #[should_panic(expected = "stride must hold a pointer")]
    fn tiny_stride_rejected() {
        let _ = LatMemRd::new(1024, 4);
    }
}
