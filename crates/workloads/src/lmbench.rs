//! An lmbench `lat_mem_rd`-style memory-latency microbenchmark (paper §6,
//! Fig. 8).
//!
//! Builds a pointer chain of the requested working-set size and chases it
//! with dependent loads; the reported metric is *cycles per load
//! instruction*, which plateaus at the L1, L2, and main-memory latency as
//! the working set grows — exactly the profile Fig. 8 plots.

use easydram_cpu::CpuApi;
use easydram_dram::det::DetRng;

use crate::Workload;

/// The memory-read-latency benchmark.
#[derive(Debug, Clone)]
pub struct LatMemRd {
    size_bytes: u64,
    stride_bytes: u64,
    loads_override: Option<u64>,
    shuffled: bool,
    measured_loads: u64,
    measured_cycles: Option<u64>,
    cycles_per_load: Option<f64>,
}

impl LatMemRd {
    /// Creates a benchmark over a `size_bytes` working set chased at
    /// `stride_bytes` (lmbench's default stride is one cache line).
    ///
    /// # Panics
    ///
    /// Panics if the stride is smaller than 8 bytes or the size smaller than
    /// one stride.
    #[must_use]
    pub fn new(size_bytes: u64, stride_bytes: u64) -> Self {
        assert!(stride_bytes >= 8, "stride must hold a pointer");
        assert!(
            size_bytes >= stride_bytes,
            "working set must hold at least one element"
        );
        Self {
            size_bytes,
            stride_bytes,
            loads_override: None,
            shuffled: false,
            measured_loads: 0,
            measured_cycles: None,
            cycles_per_load: None,
        }
    }

    /// Like [`LatMemRd::new`], but with an explicit measured-region length
    /// (dependent loads) instead of the default `max(2·n, 1024)` — co-run
    /// interference studies use this to bound the victim's runtime.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid geometry as [`LatMemRd::new`], or when
    /// `loads` is zero.
    #[must_use]
    pub fn with_loads(size_bytes: u64, stride_bytes: u64, loads: u64) -> Self {
        assert!(loads > 0, "the measured region needs at least one load");
        Self {
            loads_override: Some(loads),
            ..Self::new(size_bytes, stride_bytes)
        }
    }

    /// Like [`LatMemRd::with_loads`], but the chain visits the working set
    /// in a deterministic pseudo-random order instead of a forward stride —
    /// lmbench's locality-defeating configuration. A shuffled chase has no
    /// row-buffer locality of its own, which makes it the right victim for
    /// interference studies: its solo latency already pays row activation,
    /// so any co-run slowdown is genuine queueing, not just lost locality.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid inputs as [`LatMemRd::with_loads`].
    #[must_use]
    pub fn shuffled_with_loads(size_bytes: u64, stride_bytes: u64, loads: u64) -> Self {
        Self {
            shuffled: true,
            ..Self::with_loads(size_bytes, stride_bytes, loads)
        }
    }

    /// Cycles per dependent load over the measured region, once run.
    #[must_use]
    pub fn cycles_per_load(&self) -> Option<f64> {
        self.cycles_per_load
    }

    /// Number of dependent loads in the measured region.
    #[must_use]
    pub fn loads(&self) -> u64 {
        self.measured_loads
    }
}

impl Workload for LatMemRd {
    fn name(&self) -> &str {
        "lat_mem_rd"
    }

    fn run(&mut self, cpu: &mut dyn CpuApi) {
        let n = self.size_bytes / self.stride_bytes;
        let base = cpu.alloc(self.size_bytes, 64);
        // Build the chain. Default: element i points to element i+1, last
        // wraps to 0 (lmbench walks a strided chain; with no prefetcher in
        // the model a forward stride measures raw dependent-load latency).
        // Shuffled: a deterministic Fisher–Yates permutation cycle (drawn
        // from the suite-wide `DetRng` stream, same permutation as ever),
        // so the walk has no spatial or row-buffer locality.
        let order: Vec<u64> = if self.shuffled {
            let mut order: Vec<u64> = (0..n).collect();
            DetRng::new(DetRng::DEFAULT_SEED).shuffle(&mut order);
            order
        } else {
            (0..n).collect()
        };
        cpu.stream_begin();
        for k in 0..n as usize {
            let next = order[(k + 1) % n as usize];
            cpu.store_u64(
                base + order[k] * self.stride_bytes,
                base + next * self.stride_bytes,
            );
        }
        cpu.stream_end();
        cpu.fence();
        // Warmup pass: populate caches to steady state.
        let mut p = base;
        for _ in 0..n {
            p = cpu.load_u64(p);
        }
        // Measured region: chase the chain with dependent loads.
        let loads = self.loads_override.unwrap_or((2 * n).max(1_024));
        let t0 = cpu.now_cycles();
        for _ in 0..loads {
            p = cpu.load_u64(p);
        }
        let dt = cpu.now_cycles() - t0;
        // Keep `p` live so the chain cannot be optimized away conceptually.
        assert!(p >= base);
        self.measured_loads = loads;
        self.measured_cycles = Some(dt);
        self.cycles_per_load = Some(dt as f64 / loads as f64);
    }

    fn measured_cycles(&self) -> Option<u64> {
        self.measured_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easydram_cpu::{CoreConfig, CoreModel, FixedLatencyBackend};

    fn run_at(size: u64) -> f64 {
        let mut cpu = CoreModel::new(CoreConfig::cortex_a57(), FixedLatencyBackend::new(150));
        let mut w = LatMemRd::new(size, 64);
        w.run(&mut cpu);
        w.cycles_per_load().unwrap()
    }

    #[test]
    fn l1_resident_latency_is_l1_hit() {
        let cpl = run_at(8 * 1024); // fits in 32 KiB L1
        assert!((4.0..=7.0).contains(&cpl), "L1 cycles/load {cpl}");
    }

    #[test]
    fn l2_resident_latency_is_l2_hit() {
        let cpl = run_at(128 * 1024); // beyond L1, within 512 KiB L2
        assert!((15.0..=30.0).contains(&cpl), "L2 cycles/load {cpl}");
    }

    #[test]
    fn memory_resident_latency_is_memory() {
        let cpl = run_at(4 * 1024 * 1024); // far beyond L2
        assert!(cpl > 100.0, "memory cycles/load {cpl}");
    }

    #[test]
    fn latency_profile_is_monotonic_across_plateaus() {
        let l1 = run_at(4 * 1024);
        let l2 = run_at(256 * 1024);
        let mem = run_at(4 * 1024 * 1024);
        assert!(l1 < l2 && l2 < mem, "{l1} {l2} {mem}");
    }

    #[test]
    #[should_panic(expected = "stride must hold a pointer")]
    fn tiny_stride_rejected() {
        let _ = LatMemRd::new(1024, 4);
    }
}
