//! Copy and Init microbenchmarks (paper §7.2).
//!
//! Each takes a size `N`: **Copy** replicates an `N`-byte source array into a
//! destination array; **Init** fills an `N`-byte array with a predetermined
//! pattern. Both come in a CPU variant (plain loads/stores — the baseline
//! every figure normalizes to) and a RowClone variant (in-DRAM copies with
//! CPU fallback for unclonable rows), evaluated in two settings:
//!
//! * [`FlushMode::NoFlush`] — source data is already resident in DRAM
//!   (RowClone's best case; Fig. 10);
//! * [`FlushMode::ClFlush`] — cached copies must be written back / target
//!   lines invalidated inside the measured region (worst case; Fig. 11).

use easydram_cpu::{CpuApi, RowCloneStatus};

use crate::util::pattern_word;
use crate::Workload;

/// The Init workloads' predetermined fill pattern.
pub const INIT_PATTERN: u64 = 0xA5A5_5A5A_DEAD_BEEF;

/// Coherence setting of a RowClone microbenchmark (paper §7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FlushMode {
    /// Source data already in DRAM; no cache maintenance in the measured
    /// region.
    #[default]
    NoFlush,
    /// Dirty source lines are flushed and clean target lines invalidated
    /// inside the measured region.
    ClFlush,
}

/// Outcome counters shared by the RowClone variants.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MicroOutcome {
    /// Rows processed in total.
    pub total_rows: u64,
    /// Rows that fell back to CPU loads/stores.
    pub fallback_rows: u64,
    /// 64-bit words that mismatched during post-run verification.
    pub mismatches: u64,
}

fn write_pattern(cpu: &mut dyn CpuApi, base: u64, bytes: u64, f: impl Fn(u64) -> u64) {
    cpu.stream_begin();
    for i in 0..bytes / 8 {
        cpu.store_u64(base + i * 8, f(i));
    }
    cpu.stream_end();
    cpu.fence();
}

fn flush_region(cpu: &mut dyn CpuApi, base: u64, bytes: u64) {
    for line in 0..bytes.div_ceil(64) {
        cpu.clflush(base + line * 64);
    }
}

fn copy_words_cpu(cpu: &mut dyn CpuApi, src: u64, dst: u64, bytes: u64) {
    cpu.stream_begin();
    for i in 0..bytes / 8 {
        let v = cpu.load_u64(src + i * 8);
        cpu.store_u64(dst + i * 8, v);
        cpu.compute(2); // address generation + loop control
    }
    cpu.stream_end();
}

fn init_words_cpu(cpu: &mut dyn CpuApi, dst: u64, bytes: u64, word: u64) {
    cpu.stream_begin();
    for i in 0..bytes / 8 {
        cpu.store_u64(dst + i * 8, word);
        cpu.compute(2);
    }
    cpu.stream_end();
}

fn verify(cpu: &mut dyn CpuApi, base: u64, bytes: u64, f: impl Fn(u64) -> u64) -> u64 {
    let mut mismatches = 0;
    cpu.stream_begin();
    for i in 0..bytes / 8 {
        if cpu.load_u64(base + i * 8) != f(i) {
            mismatches += 1;
        }
    }
    cpu.stream_end();
    mismatches
}

/// CPU-copy baseline: duplicate `bytes` with load/store instructions.
#[derive(Debug, Clone)]
pub struct CpuCopy {
    bytes: u64,
    measured: Option<u64>,
    mismatches: u64,
}

impl CpuCopy {
    /// Creates a copy benchmark of `bytes` (multiple of 8).
    #[must_use]
    pub fn new(bytes: u64) -> Self {
        assert!(bytes >= 8 && bytes % 8 == 0);
        Self {
            bytes,
            measured: None,
            mismatches: 0,
        }
    }

    /// Post-run verification mismatches (0 expected).
    #[must_use]
    pub fn mismatches(&self) -> u64 {
        self.mismatches
    }
}

impl Workload for CpuCopy {
    fn name(&self) -> &str {
        "cpu-copy"
    }

    fn run(&mut self, cpu: &mut dyn CpuApi) {
        let rb = cpu.row_bytes();
        let src = cpu.alloc(self.bytes, rb);
        let dst = cpu.alloc(self.bytes, rb);
        write_pattern(cpu, src, self.bytes, pattern_word);
        flush_region(cpu, src, self.bytes);
        cpu.fence();
        let t0 = cpu.now_cycles();
        copy_words_cpu(cpu, src, dst, self.bytes);
        cpu.fence();
        self.measured = Some(cpu.now_cycles() - t0);
        self.mismatches = verify(cpu, dst, self.bytes, pattern_word);
    }

    fn measured_cycles(&self) -> Option<u64> {
        self.measured
    }
}

/// CPU-init baseline: fill `bytes` with [`INIT_PATTERN`] using stores.
#[derive(Debug, Clone)]
pub struct CpuInit {
    bytes: u64,
    measured: Option<u64>,
    mismatches: u64,
}

impl CpuInit {
    /// Creates an init benchmark of `bytes` (multiple of 8).
    #[must_use]
    pub fn new(bytes: u64) -> Self {
        assert!(bytes >= 8 && bytes % 8 == 0);
        Self {
            bytes,
            measured: None,
            mismatches: 0,
        }
    }

    /// Post-run verification mismatches (0 expected).
    #[must_use]
    pub fn mismatches(&self) -> u64 {
        self.mismatches
    }
}

impl Workload for CpuInit {
    fn name(&self) -> &str {
        "cpu-init"
    }

    fn run(&mut self, cpu: &mut dyn CpuApi) {
        let rb = cpu.row_bytes();
        let dst = cpu.alloc(self.bytes, rb);
        let t0 = cpu.now_cycles();
        init_words_cpu(cpu, dst, self.bytes, INIT_PATTERN);
        cpu.fence();
        self.measured = Some(cpu.now_cycles() - t0);
        self.mismatches = verify(cpu, dst, self.bytes, |_| INIT_PATTERN);
    }

    fn measured_cycles(&self) -> Option<u64> {
        self.measured
    }
}

/// RowClone copy: in-DRAM row copies with CPU fallback (paper §7).
#[derive(Debug, Clone)]
pub struct RowCloneCopy {
    bytes: u64,
    flush: FlushMode,
    measured: Option<u64>,
    outcome: MicroOutcome,
}

impl RowCloneCopy {
    /// Creates a RowClone copy benchmark of `bytes` in the given flush
    /// setting. Sizes round up to whole DRAM rows at run time.
    #[must_use]
    pub fn new(bytes: u64, flush: FlushMode) -> Self {
        assert!(bytes >= 8 && bytes % 8 == 0);
        Self {
            bytes,
            flush,
            measured: None,
            outcome: MicroOutcome::default(),
        }
    }

    /// Fallback/verification counters.
    #[must_use]
    pub fn outcome(&self) -> &MicroOutcome {
        &self.outcome
    }
}

impl Workload for RowCloneCopy {
    fn name(&self) -> &str {
        match self.flush {
            FlushMode::NoFlush => "rowclone-copy-noflush",
            FlushMode::ClFlush => "rowclone-copy-clflush",
        }
    }

    fn run(&mut self, cpu: &mut dyn CpuApi) {
        let rb = cpu.row_bytes();
        let bytes = self.bytes.div_ceil(rb) * rb;
        let rows = bytes / rb;
        let (src, dst) = cpu
            .rowclone_alloc_copy(bytes)
            .unwrap_or_else(|| (cpu.alloc(bytes, rb), cpu.alloc(bytes, rb)));
        write_pattern(cpu, src, bytes, pattern_word);
        if self.flush == FlushMode::NoFlush {
            // Setting 1: the source array's data is already present in DRAM.
            flush_region(cpu, src, bytes);
            cpu.fence();
        }
        let t0 = cpu.now_cycles();
        let mut fallback = 0;
        for r in 0..rows {
            let s = src + r * rb;
            let d = dst + r * rb;
            if self.flush == FlushMode::ClFlush {
                // Write back dirty source blocks, invalidate target blocks.
                flush_region(cpu, s, rb);
                flush_region(cpu, d, rb);
            }
            match cpu.rowclone_row(s, d) {
                RowCloneStatus::Copied => {}
                RowCloneStatus::FallbackNeeded | RowCloneStatus::Unsupported => {
                    fallback += 1;
                    copy_words_cpu(cpu, s, d, rb);
                }
            }
        }
        cpu.fence();
        self.measured = Some(cpu.now_cycles() - t0);
        // RowClone bypasses the caches: drop any stale destination lines
        // before verifying (the measured region for NoFlush never caches
        // dst; for ClFlush the flushes above already invalidated it).
        self.outcome = MicroOutcome {
            total_rows: rows,
            fallback_rows: fallback,
            mismatches: verify(cpu, dst, bytes, pattern_word),
        };
    }

    fn measured_cycles(&self) -> Option<u64> {
        self.measured
    }
}

/// RowClone init: clone a per-subarray pattern row into every destination
/// row, with CPU fallback (paper §7.1 "Source and Target Row Allocation").
#[derive(Debug, Clone)]
pub struct RowCloneInit {
    bytes: u64,
    flush: FlushMode,
    measured: Option<u64>,
    outcome: MicroOutcome,
}

impl RowCloneInit {
    /// Creates a RowClone init benchmark of `bytes` in the given setting.
    #[must_use]
    pub fn new(bytes: u64, flush: FlushMode) -> Self {
        assert!(bytes >= 8 && bytes % 8 == 0);
        Self {
            bytes,
            flush,
            measured: None,
            outcome: MicroOutcome::default(),
        }
    }

    /// Fallback/verification counters.
    #[must_use]
    pub fn outcome(&self) -> &MicroOutcome {
        &self.outcome
    }
}

impl Workload for RowCloneInit {
    fn name(&self) -> &str {
        match self.flush {
            FlushMode::NoFlush => "rowclone-init-noflush",
            FlushMode::ClFlush => "rowclone-init-clflush",
        }
    }

    fn run(&mut self, cpu: &mut dyn CpuApi) {
        let rb = cpu.row_bytes();
        let bytes = self.bytes.div_ceil(rb) * rb;
        let rows = bytes / rb;
        let alloc = cpu.rowclone_alloc_init(bytes);
        let (dst, src_rows) = match alloc {
            Some(pair) => pair,
            None => (cpu.alloc(bytes, rb), Vec::new()),
        };
        // Allocation-time prep: fill each subarray's pattern source row.
        for &s in &src_rows {
            init_words_cpu(cpu, s, rb, INIT_PATTERN);
            if self.flush == FlushMode::NoFlush {
                flush_region(cpu, s, rb);
            }
        }
        cpu.fence();
        let t0 = cpu.now_cycles();
        let mut fallback = 0;
        for r in 0..rows {
            let d = dst + r * rb;
            let source = cpu.rowclone_init_source(d);
            match source {
                Some(s) => {
                    if self.flush == FlushMode::ClFlush {
                        // Dirty pattern-row blocks must reach DRAM; clean
                        // target blocks are invalidated.
                        flush_region(cpu, s, rb);
                        flush_region(cpu, d, rb);
                    }
                    match cpu.rowclone_row(s, d) {
                        RowCloneStatus::Copied => {}
                        RowCloneStatus::FallbackNeeded | RowCloneStatus::Unsupported => {
                            fallback += 1;
                            init_words_cpu(cpu, d, rb, INIT_PATTERN);
                        }
                    }
                }
                None => {
                    fallback += 1;
                    init_words_cpu(cpu, d, rb, INIT_PATTERN);
                }
            }
        }
        cpu.fence();
        self.measured = Some(cpu.now_cycles() - t0);
        self.outcome = MicroOutcome {
            total_rows: rows,
            fallback_rows: fallback,
            mismatches: verify(cpu, dst, bytes, |_| INIT_PATTERN),
        };
    }

    fn measured_cycles(&self) -> Option<u64> {
        self.measured
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easydram_cpu::{CoreConfig, CoreModel, FixedLatencyBackend};

    fn cpu() -> CoreModel<FixedLatencyBackend> {
        CoreModel::new(CoreConfig::cortex_a57(), FixedLatencyBackend::new(120))
    }

    #[test]
    fn cpu_copy_is_correct() {
        let mut c = cpu();
        let mut w = CpuCopy::new(64 * 1024);
        w.run(&mut c);
        assert_eq!(w.mismatches(), 0);
        assert!(w.measured_cycles().unwrap() > 0);
    }

    #[test]
    fn cpu_init_is_correct() {
        let mut c = cpu();
        let mut w = CpuInit::new(32 * 1024);
        w.run(&mut c);
        assert_eq!(w.mismatches(), 0);
    }

    #[test]
    fn rowclone_copy_falls_back_entirely_without_support() {
        let mut c = cpu();
        let mut w = RowCloneCopy::new(16 * 1024, FlushMode::NoFlush);
        w.run(&mut c);
        let o = w.outcome();
        assert_eq!(o.total_rows, 2);
        assert_eq!(o.fallback_rows, 2, "plain memory cannot RowClone");
        assert_eq!(o.mismatches, 0, "fallback must still be correct");
    }

    #[test]
    fn rowclone_init_falls_back_entirely_without_support() {
        let mut c = cpu();
        let mut w = RowCloneInit::new(16 * 1024, FlushMode::ClFlush);
        w.run(&mut c);
        assert_eq!(w.outcome().fallback_rows, 2);
        assert_eq!(w.outcome().mismatches, 0);
    }

    #[test]
    fn clflush_mode_costs_more_than_noflush() {
        let mut c1 = cpu();
        let mut w1 = RowCloneCopy::new(64 * 1024, FlushMode::NoFlush);
        w1.run(&mut c1);
        let mut c2 = cpu();
        let mut w2 = RowCloneCopy::new(64 * 1024, FlushMode::ClFlush);
        w2.run(&mut c2);
        assert!(
            w2.measured_cycles().unwrap() > w1.measured_cycles().unwrap(),
            "cache maintenance must cost time"
        );
    }

    #[test]
    fn sizes_round_up_to_rows() {
        let mut c = cpu();
        let mut w = RowCloneCopy::new(8, FlushMode::NoFlush);
        w.run(&mut c);
        assert_eq!(w.outcome().total_rows, 1);
    }

    #[test]
    #[should_panic]
    fn zero_size_rejected() {
        let _ = CpuCopy::new(0);
    }
}
