//! Multi-core shared-tile co-runs: N cores, one memory system, measurable
//! interference.
//!
//! Two demos over `MultiCoreSystem`:
//!
//! 1. co-run two identical pointer chases and watch the per-requestor
//!    report split the tile's traffic (and bandwidth) evenly;
//! 2. co-run a latency-sensitive chase against a streaming writer at 1 and
//!    2 channels and watch the second channel recover most of the
//!    interference.
//!
//! ```sh
//! cargo run --release --example multi_core
//! ```

use easydram_suite::easydram::{MultiCoreSystem, SystemConfig, TimingMode};
use easydram_suite::workloads::lmbench::LatMemRd;
use easydram_suite::workloads::StreamWriter;

fn quick() -> bool {
    std::env::var("EASYDRAM_QUICK").is_ok_and(|v| v != "0")
}

fn main() {
    let loads = if quick() { 512 } else { 2_048 };

    // --- Demo 1: a symmetric pair over one shared 1-channel tile. ---
    let cfg = SystemConfig::small_for_tests(TimingMode::Reference);
    let mut sys = MultiCoreSystem::new(cfg.clone(), 2);
    let mut a = LatMemRd::with_loads(64 * 1024, 64, loads);
    let mut b = LatMemRd::with_loads(64 * 1024, 64, loads);
    let report = sys.co_run(&mut [&mut a, &mut b]);
    println!("symmetric pair on one shared tile:\n{report}\n");
    let q = &report.aggregate.requestors;
    let total: u64 = q.iter().map(|q| q.dram_occupancy_ps).sum();
    for q in q {
        println!(
            "  requestor {}: {} requests, {:.0}% bandwidth share, {:.0}% row hits",
            q.requestor,
            q.requests,
            q.bandwidth_share(total) * 100.0,
            q.row_hit_rate() * 100.0,
        );
    }

    // --- Demo 2: victim vs aggressor, 1 channel then 2. The cache
    // hierarchy is shrunk (4 KiB L1, 32 KiB L2) so the 256 KiB chase is
    // memory-resident and the contention happens where it matters: on the
    // per-channel DRAM buses. ---
    use easydram_suite::cpu::CacheConfig;
    println!("\nchase vs streaming writer:");
    for channels in [1u32, 2] {
        let mut cfg = cfg.clone();
        cfg.dram.geometry.channels = channels;
        cfg.dram.geometry.bank_groups = 2;
        cfg.dram.geometry.banks_per_group = 4;
        cfg.core.l1 = Some(CacheConfig {
            size_bytes: 4 * 1024,
            ways: 2,
            hit_latency_cycles: 4,
        });
        cfg.core.l2 = Some(CacheConfig {
            size_bytes: 32 * 1024,
            ways: 4,
            hit_latency_cycles: 12,
        });

        let mut solo = LatMemRd::shuffled_with_loads(256 * 1024, 64, loads);
        let mut sys = MultiCoreSystem::new(cfg.clone(), 1);
        sys.set_quantum(40);
        sys.co_run(&mut [&mut solo]);

        let mut chase = LatMemRd::shuffled_with_loads(256 * 1024, 64, loads);
        let mut writer = StreamWriter::new(256 * 1024, 2_000_000);
        let mut sys = MultiCoreSystem::new(cfg, 2);
        sys.set_quantum(40);
        sys.co_run(&mut [&mut chase, &mut writer]);

        let solo_cpl = solo.cycles_per_load().unwrap();
        let co_cpl = chase.cycles_per_load().unwrap();
        println!(
            "  {channels} channel(s): {solo_cpl:6.1} cycles/load solo, {co_cpl:6.1} co-run \
             ({:.2}x degradation)",
            co_cpl / solo_cpl
        );
    }
}
