//! Writing your own software memory controller (paper Listing 1 / Table 2):
//! implement `SoftwareMemoryController` against EasyAPI and install it in a
//! running system — no HDL involved.
//!
//! The system↔controller boundary is a **request stream**: the core posts
//! writes and writebacks into the tile's pending FIFO without blocking, and
//! a read (or fence, or a full write buffer) forces a drain. Your `serve`
//! is then invoked over the whole accumulated batch at once — the request
//! table can hold many in-flight requests, and everything you spend between
//! one `enqueue_response` and the next is attributed to that response, so
//! every request gets its own release cycle. See `docs/API.md` for the full
//! lifecycle and the migration notes.
//!
//! ```sh
//! cargo run --release --example custom_controller
//! ```

use easydram_suite::cpu::CpuApi;
use easydram_suite::easydram::request::RequestKind;
use easydram_suite::easydram::{
    EasyApi, ServeResult, SoftwareMemoryController, System, SystemConfig, TimingMode,
};

/// The paper's Listing 1: a minimal controller with a closed-page policy.
/// Writes are supported by write-allocating in DRAM directly.
struct ListingOneController;

impl SoftwareMemoryController for ListingOneController {
    fn name(&self) -> &str {
        "listing-1"
    }

    fn serve(&mut self, api: &mut EasyApi<'_>) -> ServeResult {
        let mut result = ServeResult::default();
        api.set_scheduling_state(true);
        // Drain the hardware FIFO into the request table (Listing 1 line 3:
        // `while (!req_empty()) add_request(receive_request())`). The batch
        // may hold one read plus every writeback posted before it.
        api.receive_all();
        // Serve the table to empty. FCFS keeps arrival order; a smarter
        // controller would scan `api.request_table()` for row hits here
        // (see `FrFcfsController`) — with a multi-entry table that genuinely
        // changes per-request latency.
        while let Some(idx) = api.schedule_fcfs() {
            let req = api.take_request(idx);
            // Translate physical address to DRAM address.
            let addr = api.get_addr_mapping(req.addr());
            match req.kind {
                RequestKind::Read { .. } => {
                    // Issue DRAM commands to serve the request.
                    api.ddr_activate(addr.bank, addr.row).unwrap();
                    api.ddr_read(addr.bank, addr.col).unwrap();
                    api.ddr_precharge(addr.bank).unwrap();
                    let (data, corrupted) = {
                        let r = api.flush_commands().unwrap();
                        (r.reads[0], r.read_corrupted[0])
                    };
                    // Send request response to the processor; the cycles
                    // spent since the previous response become this one's
                    // timing slice.
                    api.enqueue_response(req.id, Some(data), corrupted);
                    result.row_misses += 1;
                }
                RequestKind::Write { data, .. } => {
                    api.ddr_activate(addr.bank, addr.row).unwrap();
                    api.ddr_write(addr.bank, addr.col, data).unwrap();
                    api.ddr_precharge(addr.bank).unwrap();
                    api.flush_commands().unwrap();
                    api.enqueue_response(req.id, None, false);
                    result.row_misses += 1;
                }
                _ => {
                    // This minimal controller serves only reads and writes.
                    api.enqueue_response(req.id, None, false);
                }
            }
            result.served += 1;
        }
        api.set_scheduling_state(false);
        result
    }
}

fn main() {
    let mut sys = System::new(SystemConfig::jetson_nano(TimingMode::TimeScaling));
    sys.install_controller(Box::new(ListingOneController));
    println!("installed controller: {}", sys.tile().controller_name());

    // Exercise it: data must round-trip through DRAM.
    let a = sys.cpu().alloc(64 * 1024, 64);
    for i in 0..8192u64 {
        sys.cpu().store_u64(a + i * 8, i * 31 + 5);
    }
    for line in 0..1024u64 {
        sys.cpu().clflush(a + line * 64);
    }
    sys.cpu().fence();
    let mut bad = 0;
    for i in 0..8192u64 {
        if sys.cpu().load_u64(a + i * 8) != i * 31 + 5 {
            bad += 1;
        }
    }
    let report = sys.report("custom-controller");
    println!("round-trip mismatches: {bad}");
    println!("{report}");
    println!(
        "posted writes: {} | forced drains: {} | peak batch: {}",
        report.smc.posted_writes, report.smc.forced_drains, report.smc.peak_batch
    );

    // The flush burst above reaches the controller as multi-request batches
    // through the bounded write buffer.
    assert!(report.smc.peak_batch > 1, "batching must happen");
    // Closed-page FCFS leaves row-hit opportunities on the table; the
    // shipped FR-FCFS controller is faster on the same access pattern.
    assert_eq!(bad, 0);
    assert_eq!(report.smc.serve.row_hits, 0, "closed page never hits");
}
