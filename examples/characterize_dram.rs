//! DRAM characterization sweep (paper §8.1, Fig. 12 methodology): issue
//! profiling requests end-to-end and report the distribution of minimum
//! reliable tRCD values and the behaviour of reads below threshold.
//!
//! ```sh
//! cargo run --release --example characterize_dram
//! ```

use easydram_suite::easydram::profiling::TrcdProfiler;
use easydram_suite::easydram::{System, SystemConfig, TimingMode};

fn main() {
    let mut sys = System::new(SystemConfig::jetson_nano(TimingMode::Reference));
    let profiler = TrcdProfiler {
        cols_sampled: 4,
        trials: 2,
        ..TrcdProfiler::default()
    };
    let rows = 512;
    println!("profiling bank 0, rows 0..{rows} (4 sampled lines per row)...");
    let outcome = profiler.profile_region(&mut sys, 1, rows);

    // Histogram in 0.5 ns buckets.
    let mut hist = std::collections::BTreeMap::new();
    for &(_, _, t) in &outcome.rows {
        *hist.entry(t / 500 * 500).or_insert(0u32) += 1;
    }
    println!(
        "\nmin reliable tRCD distribution ({} rows):",
        outcome.rows.len()
    );
    for (bucket, count) in &hist {
        let bar = "#".repeat((*count as usize).min(60));
        println!("  {:>5.2} ns | {bar} {count}", *bucket as f64 / 1000.0);
    }
    println!(
        "\nstrong fraction (<= 9.0 ns): {:.1}%",
        outcome.strong_fraction() * 100.0
    );

    // Demonstrate what profiling protects against: read a weak row below
    // its threshold and watch the data corrupt.
    let weak = outcome
        .rows
        .iter()
        .max_by_key(|r| r.2)
        .expect("rows profiled");
    println!(
        "\nweakest profiled row: bank {} row {} needs {:.2} ns",
        weak.0,
        weak.1,
        weak.2 as f64 / 1000.0
    );
    let issue = {
        use easydram_suite::cpu::CpuApi;
        sys.cpu().now_cycles()
    };
    let ok_at_nominal = sys
        .tile_mut()
        .profile_line(weak.0, weak.1, 0, 13_500, issue);
    let ok_below =
        sys.tile_mut()
            .profile_line(weak.0, weak.1, 0, weak.2.saturating_sub(800), issue);
    println!("  read at nominal 13.5 ns correct: {ok_at_nominal}");
    println!("  read 0.8 ns below its minimum correct: {ok_below}");
    assert!(ok_at_nominal);
}
