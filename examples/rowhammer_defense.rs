//! RowHammer attack and defense in a dozen lines: enable the read-
//! disturbance model, hammer a victim row double-sided through the full
//! stack, then install the PARA and Graphene software-memory-controller
//! mitigations and watch the flips disappear at ~2 % cycle overhead.
//!
//! ```sh
//! cargo run --release --example rowhammer_defense
//! ```

use easydram_suite::easydram::{
    GrapheneController, ParaController, SoftwareMemoryController, System, SystemConfig, TimingMode,
};
use easydram_suite::workloads::hammer::{HammerKernel, HammerPattern};
use easydram_suite::workloads::Workload;

fn quick() -> bool {
    std::env::var("EASYDRAM_QUICK").is_ok_and(|v| v != "0")
}

fn main() {
    // The small test rig with disturbance on and HCfirst scaled down so the
    // attack completes in seconds (mechanics are intensity-invariant).
    let mut cfg = SystemConfig::small_for_tests(TimingMode::Reference);
    cfg.dram.variation.disturb_enabled = true;
    cfg.dram.variation.hc_first = (2_048, 4_096);
    let iterations = if quick() { 5_000 } else { 8_000 };

    let run = |label: &str, controller: Option<Box<dyn SoftwareMemoryController>>| {
        let mut sys = System::new(cfg.clone());
        if let Some(c) = controller {
            sys.install_controller(c);
        }
        let mut attack = HammerKernel::in_bank(
            &cfg.dram.geometry,
            cfg.mapping,
            0,
            500,
            HammerPattern::DoubleSided,
            iterations,
        );
        sys.run(&mut attack);
        let report = sys.report(label);
        let rfm = report.mitigation.map_or(0, |m| m.targeted_refreshes);
        println!(
            "  {label:>10}: {} victim bits flipped, {} targeted refreshes, {} hammer cycles",
            attack.bit_flips().unwrap(),
            rfm,
            attack.measured_cycles().unwrap(),
        );
        (
            attack.bit_flips().unwrap(),
            attack.measured_cycles().unwrap(),
        )
    };

    println!("double-sided hammer, {iterations} activations per aggressor:");
    let (flips, base) = run("undefended", None);
    let (para_flips, para_cycles) = run(
        "PARA",
        Some(Box::new(ParaController::new(512, 0xEA5D_0D12))),
    );
    let (graphene_flips, graphene_cycles) =
        run("Graphene", Some(Box::new(GrapheneController::new(512, 8))));

    println!(
        "\nundefended flips: {flips}; PARA {para_flips} flips at {:.3}x, \
         Graphene {graphene_flips} flips at {:.3}x",
        para_cycles as f64 / base as f64,
        graphene_cycles as f64 / base as f64,
    );
    assert!(flips > 0, "the undefended attack must land");
    assert_eq!(para_flips, 0, "PARA must hold");
    assert_eq!(graphene_flips, 0, "Graphene must hold");
    println!("both defenses held.");
}
