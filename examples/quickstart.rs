//! Quickstart: build an EasyDRAM system, run a workload end-to-end, and
//! read the execution report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use easydram_suite::easydram::{System, SystemConfig, TimingMode};
use easydram_suite::workloads::{polybench, PolySize};

fn main() {
    // The paper's main configuration: a Jetson-Nano-class system (Cortex-A57
    // at 1.43 GHz) modeled on a slow FPGA prototype with time scaling.
    let mut system = System::new(SystemConfig::jetson_nano(TimingMode::TimeScaling));

    // Any workload is an ordinary program over the CpuApi; run PolyBench gemm.
    let mut gemm = polybench::Gemm::new(PolySize::Mini);
    let report = system.run(&mut gemm);

    println!("{report}");
    println!();
    println!(
        "checksum (keeps the computation honest): {:.6}",
        gemm.checksum()
    );
    println!(
        "The same workload observed {} emulated cycles at {:.2} MHz simulation speed.",
        report.emulated_cycles,
        report.sim_speed_hz / 1e6
    );

    // Compare against the ground-truth reference system: time scaling should
    // track it within a fraction of a percent (paper §6).
    let mut reference = System::new(SystemConfig::jetson_nano(TimingMode::Reference));
    let mut gemm2 = polybench::Gemm::new(PolySize::Mini);
    let ref_report = reference.run(&mut gemm2);
    let err = (report.emulated_cycles as f64 - ref_report.emulated_cycles as f64).abs()
        / ref_report.emulated_cycles as f64;
    println!("time-scaling error vs reference: {:.4}%", err * 100.0);
}
