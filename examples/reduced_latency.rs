//! DRAM access-latency reduction (paper §8): profile the chip's per-row
//! minimum reliable tRCD, build the RAIDR-style weak-row Bloom filter, and
//! run a workload with reduced-latency accesses to strong rows.
//!
//! ```sh
//! cargo run --release --example reduced_latency
//! ```

use easydram_suite::easydram::profiling::TrcdProfiler;
use easydram_suite::easydram::{System, SystemConfig, TimingMode};
use easydram_suite::workloads::{polybench, PolySize};

fn main() {
    // Step 1 (§8.1): characterize part of the chip with real profiling
    // requests through the software memory controller and DRAM Bender.
    let mut probe = System::new(SystemConfig::jetson_nano(TimingMode::Reference));
    let profiler = TrcdProfiler {
        cols_sampled: 2,
        trials: 2,
        ..TrcdProfiler::default()
    };
    let outcome = profiler.profile_region(&mut probe, 2, 256);
    let (min, max) = outcome.min_max_ps().expect("profiled rows");
    println!(
        "profiled {} rows: min tRCD {:.2} ns, max {:.2} ns, {:.1}% strong (<= 9 ns)",
        outcome.rows.len(),
        min as f64 / 1000.0,
        max as f64 / 1000.0,
        outcome.strong_fraction() * 100.0
    );

    // Step 2 (§8.2): run a kernel with and without the tRCD-reduction
    // controller (Bloom filter built over the used address range).
    let run = |reduce: bool| {
        let mut sys = System::new(SystemConfig::jetson_nano(TimingMode::TimeScaling));
        if reduce {
            sys.enable_trcd_reduction(2_048, 9_000);
        }
        let mut w = polybench::Gemver::new(PolySize::Mini);
        let report = sys.run(&mut w);
        (
            report.emulated_cycles,
            report.smc.serve.reduced_trcd_accesses,
            report.dram.corrupted_reads,
        )
    };
    let (nominal, _, _) = run(false);
    let (reduced, fast_accesses, corrupted) = run(true);
    println!("\ngemver at nominal tRCD: {nominal} cycles");
    println!("gemver with tRCD reduction: {reduced} cycles ({fast_accesses} reduced accesses)");
    println!(
        "speedup: {:+.2}%",
        (nominal as f64 / reduced as f64 - 1.0) * 100.0
    );
    println!("corrupted reads (the Bloom filter must keep this at zero): {corrupted}");
    assert_eq!(
        corrupted, 0,
        "weak rows must never be accessed at reduced tRCD"
    );
}
