//! End-to-end RowClone (paper §7): allocate a RowClone-compatible buffer
//! pair, copy it in-DRAM with CPU fallback for unqualified rows, verify the
//! data, and compare against a plain CPU copy.
//!
//! ```sh
//! cargo run --release --example rowclone_copy
//! ```

use easydram_suite::cpu::{CpuApi, RowCloneStatus};
use easydram_suite::easydram::{System, SystemConfig, TimingMode};

fn main() {
    let mut cfg = SystemConfig::jetson_nano(TimingMode::TimeScaling);
    cfg.rowclone_test_trials = 1_000; // the paper's qualification test
    let mut sys = System::new(cfg);

    let bytes = 16 * 8192u64; // 16 DRAM rows
    let rb = sys.cpu().row_bytes();
    let rows = bytes / rb;

    // The allocator solves §7.1's constraints: row alignment, granularity,
    // same-subarray placement with 1000-trial-qualified pairs.
    let (src, dst) = sys
        .cpu()
        .rowclone_alloc_copy(bytes)
        .expect("allocation fits");

    // Fill the source and push it to DRAM (RowClone operates on the array,
    // not the caches — the "coherence problem").
    for i in 0..bytes / 8 {
        let v = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        sys.cpu().store_u64(src + i * 8, v);
    }
    for line in 0..bytes / 64 {
        sys.cpu().clflush(src + line * 64);
    }
    sys.cpu().fence();

    let t0 = sys.cpu().now_cycles();
    let mut cloned = 0;
    let mut fallback = 0;
    for r in 0..rows {
        match sys.cpu().rowclone_row(src + r * rb, dst + r * rb) {
            RowCloneStatus::Copied => cloned += 1,
            RowCloneStatus::FallbackNeeded | RowCloneStatus::Unsupported => {
                fallback += 1;
                sys.cpu().stream_begin();
                for i in 0..rb / 8 {
                    let v = sys.cpu().load_u64(src + r * rb + i * 8);
                    sys.cpu().store_u64(dst + r * rb + i * 8, v);
                }
                sys.cpu().stream_end();
            }
        }
    }
    sys.cpu().fence();
    let rowclone_cycles = sys.cpu().now_cycles() - t0;

    // Verify every word.
    let mut mismatches = 0u64;
    for i in 0..bytes / 8 {
        let v = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        if sys.cpu().load_u64(dst + i * 8) != v {
            mismatches += 1;
        }
    }

    // Plain CPU copy of the same size for comparison.
    let a = sys.cpu().alloc(bytes, rb);
    let b = sys.cpu().alloc(bytes, rb);
    let t0 = sys.cpu().now_cycles();
    sys.cpu().stream_begin();
    for i in 0..bytes / 8 {
        let v = sys.cpu().load_u64(a + i * 8);
        sys.cpu().store_u64(b + i * 8, v);
    }
    sys.cpu().stream_end();
    sys.cpu().fence();
    let cpu_cycles = sys.cpu().now_cycles() - t0;

    println!("RowClone copy of {bytes} bytes ({rows} rows):");
    println!("  in-DRAM clones: {cloned}, CPU fallbacks: {fallback}");
    println!("  verification mismatches: {mismatches}");
    println!("  RowClone path: {rowclone_cycles} cycles");
    println!("  CPU copy:      {cpu_cycles} cycles");
    println!(
        "  speedup:       {:.1}x",
        cpu_cycles as f64 / rowclone_cycles as f64
    );
    println!("\nDRAM device: {}", sys.tile().device().stats());
}
