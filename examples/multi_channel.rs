//! Multi-channel memory systems: grow the modeled geometry from the paper's
//! 1-channel/1-rank DDR4 to 2 and 4 channels, and watch a channel-interleaved
//! read stream scale near-linearly while the default config stays untouched.
//!
//! ```sh
//! cargo run --release --example multi_channel
//! ```

use easydram_suite::cpu::backend::MemoryBackend;
use easydram_suite::easydram::{RequestKind, System, SystemConfig, TimingMode};

/// Posts a channel-interleaved, bank-conflict-free read batch straight into
/// the tile's per-channel sessions and returns the latest release cycle.
fn stream_cycles(channels: u32, reads: u64) -> u64 {
    let mut cfg = SystemConfig::jetson_nano(TimingMode::Reference);
    // The whole multi-channel surface is two geometry fields:
    cfg.dram.geometry.channels = channels;
    cfg.dram.geometry.ranks = 1;
    let mut system = System::new(cfg);

    let tile = system.tile_mut();
    for i in 0..reads {
        tile.post_request(
            RequestKind::Read {
                addr: 0x4_0000 + i * 64,
            },
            0,
        );
    }
    // The drain runs one serve pass: each channel's controller schedules its
    // own batch (FR-FCFS within the channel), and the channels overlap.
    tile.drain_writes(0)
}

fn main() {
    let reads = 512u64;
    println!("{reads}-read interleaved stream:");
    let mut base = 0u64;
    for channels in [1u32, 2, 4] {
        let cycles = stream_cycles(channels, reads);
        if channels == 1 {
            base = cycles;
        }
        println!(
            "  {channels} channel(s): {cycles:>6} emulated cycles ({:.2}x speedup)",
            base as f64 / cycles as f64
        );
    }

    // End-to-end, the per-channel report counters show the interleave
    // spreading CPU traffic evenly across channels.
    let mut cfg = SystemConfig::jetson_nano(TimingMode::TimeScaling);
    cfg.dram.geometry.channels = 4;
    let mut system = System::new(cfg);
    use easydram_suite::cpu::CpuApi;
    let a = system.cpu().alloc(64 * 256, 64);
    for i in 0..256u64 {
        system.cpu().store_u64(a + i * 64, i);
    }
    for i in 0..256u64 {
        system.cpu().clflush(a + i * 64);
    }
    system.cpu().fence();
    let report = system.report("4-channel flush burst");
    println!("\nper-channel requests after a 256-line flush burst:");
    for (ch, c) in report.channels.iter().enumerate() {
        println!(
            "  ch{ch}: {} requests, {} batches, refreshes/rank {:?}",
            c.requests, c.batches, c.refreshes_per_rank
        );
    }
}
