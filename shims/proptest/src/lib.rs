//! Offline shim for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no crates.io access, so this crate provides a
//! minimal, deterministic re-implementation of the proptest API surface the
//! workspace's tests use: the [`proptest!`] macro, [`Strategy`] over integer
//! ranges / tuples / `Just` / unions, `prop::collection::vec`,
//! `prop::array::uniform32`, [`any`], and the `prop_assert*` / `prop_assume`
//! macros. Generation is seeded per-test from the test name, so failures are
//! reproducible run-to-run.

/// Number of cases each `proptest!` test executes.
pub const CASES: u32 = 96;

/// Maximum rejected cases (via `prop_assume!`) before a test aborts.
pub const MAX_REJECTS: u32 = 65_536;

/// Error type carried out of a single generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; try another input.
    Reject,
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

pub mod test_runner {
    //! Deterministic random number generation for case inputs.

    /// A splitmix64/xorshift-style deterministic RNG.
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        /// Creates an RNG from a seed (zero is remapped to a constant).
        pub fn new(seed: u64) -> Self {
            Rng { state: seed | 1 }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Stable FNV-1a hash of a string, used to derive per-test seeds.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        h
    }
}

use test_runner::Rng;

/// A generator of test-case values.
///
/// Unlike real proptest there is no shrinking: a failing input is reported
/// as generated.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;
}

impl<T, S: Strategy<Value = T> + ?Sized> Strategy for Box<S> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        (**self).generate(rng)
    }
}

impl<T, S: Strategy<Value = T> + ?Sized> Strategy for &S {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut Rng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(::std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy: unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(::std::marker::PhantomData)
}

pub mod strategy {
    //! Strategy combinators.

    use super::{test_runner::Rng, Strategy};

    /// Uniform choice among boxed strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Boxes a strategy as a trait object (helper for `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{test_runner::Rng, Strategy};

    /// Strategy for `Vec<T>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: ::std::ops::Range<usize>,
    }

    /// `vec(element, 1..20)`: a vector of `element`-generated values.
    pub fn vec<S: Strategy>(element: S, len: ::std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use super::{test_runner::Rng, Strategy};

    /// Strategy for `[T; 32]` (backs `prop::array::uniform32`).
    pub struct Uniform32<S>(S);

    /// `uniform32(element)`: a 32-element array of `element`-generated values.
    pub fn uniform32<S: Strategy>(element: S) -> Uniform32<S> {
        Uniform32(element)
    }

    impl<S: Strategy> Strategy for Uniform32<S> {
        type Value = [S::Value; 32];
        fn generate(&self, rng: &mut Rng) -> [S::Value; 32] {
            ::std::array::from_fn(|_| self.0.generate(rng))
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` imports.

    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, Strategy, TestCaseError,
    };
}

/// Defines deterministic property tests with proptest's `name(arg in strategy)`
/// syntax. Each test runs [`CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::test_runner::Rng::new(
                $crate::test_runner::seed_from_name(concat!(module_path!(), "::", stringify!($name))),
            );
            let mut cases = 0u32;
            let mut rejects = 0u32;
            while cases < $crate::CASES {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => cases += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        rejects += 1;
                        assert!(
                            rejects < $crate::MAX_REJECTS,
                            "prop_assume! rejected too many cases in {}",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case failed after {cases} cases: {msg}")
                    }
                }
            }
        }
    )*};
}

/// Uniform choice among the listed strategies (all yielding the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$($crate::strategy::boxed($s)),+])
    };
}

/// Like `assert!`, but reports the failing generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                ::std::format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Like `assert_eq!`, but reports the failing generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?}) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?}; {}) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                ::std::format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    }};
}

/// Like `assert_ne!`, but reports the failing generated case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} != {}` (both: {:?}) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            )));
        }
    }};
}

/// Rejects the current case unless `cond` holds; the runner retries with a
/// fresh input.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Coin {
        Heads,
        Tails,
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -4i32..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..9).contains(&y));
        }

        #[test]
        fn vec_and_tuple_shapes(v in prop::collection::vec((0u8..4, any::<bool>()), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for (n, _) in v {
                prop_assert!(n < 4);
            }
        }

        #[test]
        fn oneof_and_assume(c in prop_oneof![Just(Coin::Heads), Just(Coin::Tails)], x in 0u32..10) {
            prop_assume!(x != 0);
            prop_assert_ne!(x, 0);
            prop_assert!(c == Coin::Heads || c == Coin::Tails);
        }

        #[test]
        fn arrays_fill(a in prop::array::uniform32(any::<u8>())) {
            prop_assert_eq!(a.len(), 32);
        }
    }

    #[test]
    fn seeds_are_stable() {
        let a = crate::test_runner::seed_from_name("x");
        let b = crate::test_runner::seed_from_name("x");
        assert_eq!(a, b);
        let mut r1 = crate::test_runner::Rng::new(a);
        let mut r2 = crate::test_runner::Rng::new(b);
        assert_eq!(r1.next_u64(), r2.next_u64());
    }
}
