//! Offline shim for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access, so this crate provides a
//! minimal wall-clock benchmark harness with the criterion API surface the
//! workspace's benches use: `Criterion::default().sample_size(..)`,
//! `benchmark_group`, `bench_function`, `Bencher::{iter, iter_batched,
//! iter_batched_ref}`, [`Throughput`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. It reports mean
//! iteration time (and derived throughput) on stdout — no statistics, plots,
//! or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How per-iteration inputs are batched (accepted for API compatibility; the
/// shim sizes batches identically).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs: large batches in real criterion.
    SmallInput,
    /// Large inputs: one input per batch.
    LargeInput,
    /// One fresh input per iteration.
    PerIteration,
}

/// Throughput annotation used to derive per-element/byte rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Runs a single named benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.sample_size, None, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&label, samples, self.throughput, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    // One warm-up pass whose timings are discarded, then the timed samples.
    f(&mut b);
    b.total = Duration::ZERO;
    b.iters = 0;
    for _ in 0..samples {
        f(&mut b);
    }
    let per_iter = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.total / u32::try_from(b.iters.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
    };
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!(
            "  {:.1} MiB/s",
            n as f64 / per_iter.as_secs_f64().max(1e-12) / (1024.0 * 1024.0)
        ),
        Throughput::Elements(n) => format!(
            "  {:.1} Melem/s",
            n as f64 / per_iter.as_secs_f64().max(1e-12) / 1.0e6
        ),
    });
    println!(
        "bench {label:<48} {:>12.3} µs/iter{}",
        per_iter.as_secs_f64() * 1.0e6,
        rate.unwrap_or_default()
    );
}

/// Passed to each benchmark closure to time the routine under measurement.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.total += start.elapsed();
        self.iters += 1;
    }

    /// Times `routine` on a fresh `setup()` input, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.total += start.elapsed();
        self.iters += 1;
    }

    /// Like [`Bencher::iter_batched`] but passes the input by mutable reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut input = setup();
        let start = Instant::now();
        black_box(routine(&mut input));
        self.total += start.elapsed();
        self.iters += 1;
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(4));
        g.bench_function("iter", |b| b.iter(|| black_box(2 + 2)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3, 4], |v| v.len(), BatchSize::SmallInput)
        });
        g.bench_function("batched_ref", |b| {
            b.iter_batched_ref(|| vec![1u8; 8], |v| v.push(9), BatchSize::SmallInput)
        });
        g.finish();
        c.bench_function("top-level", |b| b.iter(|| black_box(1)));
    }
}
