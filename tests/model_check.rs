//! Workspace gate for the bounded protocol model checker (`crates/model`).
//!
//! Mirrors the CI `model-check` job at a test-sized depth: the pristine
//! table must survive exhaustive exploration on both mini-geometries with
//! zero violations, and the mutation harness must kill every ±1-tick table
//! mutant with a minimized, replayable counterexample.

use easydram_model::{
    corrupt_tfaw_window, explore, run_mutation_harness, swap_bank_group_act_spacing, verdict,
    zero_rfm_fold, ModelConfig, Step,
};
use easydram_suite::dram::bank::RankTiming;
use easydram_suite::dram::TimingTable;

fn quick(depth: usize) -> ModelConfig {
    let mut cfg = ModelConfig::small(depth);
    cfg.act_rows = 1;
    cfg.jitter = false;
    cfg
}

#[test]
fn pristine_table_survives_exhaustive_exploration() {
    for mut cfg in [quick(4), {
        let mut c = ModelConfig::rank_folded(4);
        c.act_rows = 1;
        c.jitter = false;
        c
    }] {
        for with_rfm in [true, false] {
            cfg.with_rfm = with_rfm;
            let report = explore(&cfg);
            assert!(
                report.violations.is_empty(),
                "rfm={with_rfm}: {:#?}",
                report.violations
            );
            assert!(report.stats.states > 1_000, "{:?}", report.stats);
            assert_eq!(report.stats.deepest, 4);
        }
    }
}

/// A counterexample is replayable iff its issue times are non-decreasing
/// and every step before the final probe is accepted by the corrupted
/// table itself (the probe is where the divergence is observed, so it may
/// legitimately be a rejected or mistimed command).
fn assert_replayable(cfg: &ModelConfig, table: &TimingTable, trace: &[Step]) {
    let mut tracker = RankTiming::with_table(cfg.geometry.clone(), table.clone());
    let mut now = 0u64;
    for (i, s) in trace.iter().enumerate() {
        assert!(s.at_ps >= now, "time went backwards at step {i}: {s}");
        now = s.at_ps;
        if i + 1 < trace.len() {
            assert!(
                tracker.check(&s.cmd, s.at_ps).is_empty(),
                "replay step {i} rejected: {s}"
            );
            tracker.apply(&s.cmd, s.at_ps);
        }
    }
}

#[test]
fn named_mutants_die_with_minimized_replayable_counterexamples() {
    let cfg = ModelConfig {
        fail_fast: true,
        max_violations: 1,
        ..quick(4)
    };
    for m in [
        corrupt_tfaw_window(&cfg.timing),
        swap_bank_group_act_spacing(&cfg.timing),
        zero_rfm_fold(&cfg.timing),
    ] {
        let table = m.table.clone();
        let label = m.label.clone();
        let v = verdict(&cfg, m);
        assert!(v.killed(), "{label}: {v:?}");
        assert!(
            !v.counterexample.is_empty() && v.counterexample.len() <= 6,
            "{label}: not minimized: {:?}",
            v.counterexample
        );
        assert_replayable(&cfg, &table, &v.counterexample);
    }
}

#[test]
fn every_tick_mutant_is_killed() {
    let cfg = ModelConfig::small(4);
    let verdicts = run_mutation_harness(&cfg);
    assert_eq!(verdicts.len(), 58);
    let survivors: Vec<&str> = verdicts
        .iter()
        .filter(|v| !v.killed())
        .map(|v| v.label.as_str())
        .collect();
    assert!(survivors.is_empty(), "surviving mutants: {survivors:?}");
    for v in &verdicts {
        assert!(
            !v.counterexample.is_empty(),
            "{}: dynamic kill without a counterexample",
            v.label
        );
    }
}
