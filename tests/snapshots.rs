//! Snapshot pin layer for the timing-table hot-path rewrite.
//!
//! One deterministic miniature scenario per figure harness in
//! `crates/bench/src/bin/` (the `repro_all` set), each dumping the full
//! [`ExecutionReport`] (and companion structures) to a golden file under
//! `tests/goldens/`. The real `target/bench-report.json` carries host
//! wall-clock fields, so byte-identity is pinned here on the *deterministic*
//! report surface those figures are computed from: emulated cycles,
//! instruction counts, DRAM/controller/channel/requestor counters, modeled
//! (not measured) wall time, and derived rates.
//!
//! Any change to the command-legality path, the serve loop, or the emulated
//! timeline that shifts a single counter in any figure's pipeline shows up
//! as a byte diff here, pretty-printed at the first divergent field.
//!
//! Every figure render additionally runs at `EASYDRAM_THREADS=1`, `2`, and
//! `4` and the three renders are asserted byte-identical **before** the
//! 1-thread render is pinned against the golden: the parallel serve engine
//! and the run-ahead co-scheduler must be invisible in every report, at any
//! thread count. A fourth render with `EASYDRAM_TRACE=1` proves the
//! observability layer has zero observer effect: event tracing on or off,
//! the report bytes never move.
//!
//! Regenerate the goldens with:
//!
//! ```text
//! EASYDRAM_BLESS=1 cargo test --test snapshots
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;

use easydram_suite::cpu::backend::MemoryBackend;
use easydram_suite::cpu::{CacheConfig, CpuApi};
use easydram_suite::easydram::par::THREADS_ENV;
use easydram_suite::easydram::{
    GrapheneController, MultiCoreSystem, RequestKind, System, SystemConfig, TimingMode, TRACE_ENV,
};
use easydram_suite::ramulator::{RamulatorConfig, RamulatorSystem};
use easydram_suite::workloads::lmbench::LatMemRd;
use easydram_suite::workloads::micro::{CpuCopy, CpuInit, FlushMode, RowCloneCopy, RowCloneInit};
use easydram_suite::workloads::{polybench, HammerKernel, HammerPattern, PolySize, StreamWriter};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("{name}.snap"))
}

/// Compares `actual` against the stored golden, or rewrites the golden when
/// `EASYDRAM_BLESS` is set. On mismatch, panics with the first divergent
/// field pretty-printed (line number, expected vs. actual, and context).
fn check_snapshot(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("EASYDRAM_BLESS").is_some() {
        fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir goldens");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden {}; generate it with EASYDRAM_BLESS=1 cargo test --test snapshots",
            path.display()
        )
    });
    if expected != actual {
        panic!("{}", first_divergence(name, &expected, actual));
    }
}

/// `EASYDRAM_THREADS` is process-global and the tests in this binary run
/// concurrently, so every render sweep serializes behind this lock and
/// restores the variable before releasing it.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

/// Restores `EASYDRAM_THREADS` to its pre-sweep value on drop, so a
/// panicking render cannot leak a pinned thread count into later tests.
struct ThreadsEnvGuard(Option<std::ffi::OsString>);

impl Drop for ThreadsEnvGuard {
    fn drop(&mut self) {
        match self.0.take() {
            Some(v) => std::env::set_var(THREADS_ENV, v),
            None => std::env::remove_var(THREADS_ENV),
        }
    }
}

/// Restores `EASYDRAM_TRACE` on drop, like [`ThreadsEnvGuard`] — the
/// observer-effect render below flips it on mid-sweep.
struct TraceEnvGuard(Option<std::ffi::OsString>);

impl Drop for TraceEnvGuard {
    fn drop(&mut self) {
        match self.0.take() {
            Some(v) => std::env::set_var(TRACE_ENV, v),
            None => std::env::remove_var(TRACE_ENV),
        }
    }
}

/// Renders the figure at `EASYDRAM_THREADS=1`, `2`, and `4`, asserts the
/// three snapshots are byte-identical, then pins the 1-thread (exact
/// sequential path) render against the golden. A divergence between thread
/// counts is reported at the first divergent field, exactly like a golden
/// mismatch — it means the parallel engine's deterministic reduction broke.
fn check_snapshot_at_all_thread_counts(name: &str, render: impl Fn() -> String) {
    let _serial = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = ThreadsEnvGuard(std::env::var_os(THREADS_ENV));
    let _restore_trace = TraceEnvGuard(std::env::var_os(TRACE_ENV));
    std::env::remove_var(TRACE_ENV);
    std::env::set_var(THREADS_ENV, "1");
    let sequential = render();
    for threads in ["2", "4"] {
        std::env::set_var(THREADS_ENV, threads);
        let parallel = render();
        assert!(
            parallel == sequential,
            "figure '{name}' is not thread-count independent \
             (EASYDRAM_THREADS=1 vs {threads}):\n{}",
            first_divergence(name, &sequential, &parallel)
        );
    }
    // Observer-effect probe: the same figure with event tracing enabled
    // must reproduce the untraced report byte for byte.
    std::env::set_var(THREADS_ENV, "1");
    std::env::set_var(TRACE_ENV, "1");
    let traced = render();
    assert!(
        traced == sequential,
        "figure '{name}' is not trace-invisible \
         (EASYDRAM_TRACE=1 changed the report):\n{}",
        first_divergence(name, &sequential, &traced)
    );
    std::env::remove_var(TRACE_ENV);
    check_snapshot(name, &sequential);
}

/// Renders the first divergent line of two snapshots with surrounding
/// context — the "diff and pretty-print the first divergent field" helper
/// the figure-pinning workflow relies on.
fn first_divergence(name: &str, expected: &str, actual: &str) -> String {
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let n = exp.len().max(act.len());
    for i in 0..n {
        let e = exp.get(i).copied();
        let a = act.get(i).copied();
        if e == a {
            continue;
        }
        let mut msg = format!("snapshot '{name}' diverges at line {}:\n", i + 1);
        let ctx_start = i.saturating_sub(2);
        for (j, line) in exp.iter().enumerate().take(i).skip(ctx_start) {
            let _ = writeln!(msg, "       {:>5} | {line}", j + 1);
        }
        let _ = writeln!(msg, "  expected | {}", e.unwrap_or("<end of snapshot>"));
        let _ = writeln!(msg, "    actual | {}", a.unwrap_or("<end of snapshot>"));
        let _ = writeln!(
            msg,
            "(field `{}`; bless with EASYDRAM_BLESS=1 only if the change is intended)",
            e.or(a)
                .map(|l| l.trim().split(':').next().unwrap_or("").trim())
                .unwrap_or("?")
        );
        return msg;
    }
    format!("snapshot '{name}' diverges only in trailing whitespace")
}

/// Appends one labeled `Debug`-formatted section to a snapshot.
fn section(out: &mut String, label: &str, value: &impl std::fmt::Debug) {
    let _ = writeln!(out, "== {label} ==\n{value:#?}\n");
}

fn small(mode: TimingMode) -> SystemConfig {
    SystemConfig::small_for_tests(mode)
}

#[test]
fn snapshot_table1_platforms() {
    // Table 1: the platform classes. One report per platform archetype on
    // the same kernel: EasyDRAM (time-scaled) and a PiDRAM-class No-TS
    // system, both on the small test geometry.
    check_snapshot_at_all_thread_counts("table1_platforms", || {
        let mut out = String::new();
        let mut sys = System::new(small(TimingMode::TimeScaling));
        let mut w = polybench::by_name("durbin", PolySize::Mini).expect("kernel");
        section(&mut out, "easydram durbin", &sys.run(w.as_mut()));
        let mut cfg = SystemConfig::pidram_like();
        cfg.dram = easydram_suite::dram::DramConfig::small_for_tests();
        cfg.rowclone_test_trials = 100;
        let mut sys = System::new(cfg);
        let mut w = polybench::by_name("durbin", PolySize::Mini).expect("kernel");
        section(&mut out, "pidram durbin", &sys.run(w.as_mut()));
        out
    });
}

#[test]
fn snapshot_validate_timescaling() {
    // §6 validation: the TS and Reference systems on the same kernel.
    check_snapshot_at_all_thread_counts("validate_timescaling", || {
        let mut out = String::new();
        for mode in [TimingMode::Reference, TimingMode::TimeScaling] {
            let mut cfg = SystemConfig::validation_1ghz(mode);
            cfg.dram = easydram_suite::dram::DramConfig::small_for_tests();
            cfg.rowclone_test_trials = 100;
            let mut sys = System::new(cfg);
            let mut w = polybench::by_name("jacobi-1d", PolySize::Mini).expect("kernel");
            section(&mut out, &format!("{mode}"), &sys.run(w.as_mut()));
        }
        out
    });
}

#[test]
fn snapshot_fig8_latency_profile() {
    // Fig. 8: dependent-load latency through the full hierarchy.
    check_snapshot_at_all_thread_counts("fig8_latency_profile", || {
        let mut out = String::new();
        for (label, mode) in [
            ("reference", TimingMode::Reference),
            ("time-scaling", TimingMode::TimeScaling),
        ] {
            let mut sys = System::new(small(mode));
            let mut w = LatMemRd::new(64 * 1024, 64);
            let r = sys.run(&mut w);
            let _ = writeln!(
                &mut out,
                "== {label} cycles/load ==\n{:?}\n",
                w.cycles_per_load()
            );
            section(&mut out, &format!("{label} report"), &r);
        }
        out
    });
}

#[test]
fn snapshot_fig10_rowclone_noflush() {
    // Fig. 10: RowClone copy vs. CPU copy, no cache maintenance.
    check_snapshot_at_all_thread_counts("fig10_rowclone_noflush", || {
        let bytes = 16 * 1024;
        let mut out = String::new();
        let mut sys = System::new(small(TimingMode::TimeScaling));
        section(&mut out, "cpu copy", &sys.run(&mut CpuCopy::new(bytes)));
        let mut sys = System::new(small(TimingMode::TimeScaling));
        section(
            &mut out,
            "rowclone copy noflush",
            &sys.run(&mut RowCloneCopy::new(bytes, FlushMode::NoFlush)),
        );
        out
    });
}

#[test]
fn snapshot_fig11_rowclone_clflush() {
    // Fig. 11: the CLFLUSH coherence variant, plus the small-size init case.
    check_snapshot_at_all_thread_counts("fig11_rowclone_clflush", || {
        let mut out = String::new();
        let mut sys = System::new(small(TimingMode::TimeScaling));
        section(
            &mut out,
            "rowclone copy clflush",
            &sys.run(&mut RowCloneCopy::new(16 * 1024, FlushMode::ClFlush)),
        );
        let mut sys = System::new(small(TimingMode::TimeScaling));
        section(
            &mut out,
            "rowclone init clflush",
            &sys.run(&mut RowCloneInit::new(8 * 1024, FlushMode::ClFlush)),
        );
        let mut sys = System::new(small(TimingMode::TimeScaling));
        section(&mut out, "cpu init", &sys.run(&mut CpuInit::new(8 * 1024)));
        out
    });
}

#[test]
fn snapshot_fig12_trcd_heatmap() {
    // Fig. 12: the seeded tRCD variation surface plus the profiling path.
    check_snapshot_at_all_thread_counts("fig12_trcd_heatmap", || {
        let mut sys = System::new(small(TimingMode::Reference));
        let mut out = String::new();
        {
            let var = sys.tile().device().variation().clone();
            let grid: Vec<u64> = (0..2u32)
                .flat_map(|bank| (0..2048).step_by(97).map(move |row| (bank, row)))
                .map(|(bank, row)| var.row_min_trcd_ps(bank, row))
                .collect();
            section(&mut out, "row min tRCD grid (stride 97)", &grid);
        }
        // Profile two rows at two tRCD points through the real command path.
        let issue = sys.cpu().now_cycles();
        let probes: Vec<(u32, u64, bool)> =
            [(0u32, 13_500u64), (0, 8_000), (7, 13_500), (7, 8_000)]
                .iter()
                .map(|&(row, trcd)| {
                    (
                        row,
                        trcd,
                        sys.tile_mut().profile_line(0, row, 0, trcd, issue),
                    )
                })
                .collect();
        section(&mut out, "profile_line probes (row, trcd_ps, ok)", &probes);
        section(&mut out, "report", &sys.report("fig12"));
        out
    });
}

#[test]
fn snapshot_fig13_trcd_speedup() {
    // Fig. 13: tRCD reduction on a kernel, Bloom-filter-protected.
    check_snapshot_at_all_thread_counts("fig13_trcd_speedup", || {
        let mut out = String::new();
        for reduce in [false, true] {
            let mut sys = System::new(small(TimingMode::TimeScaling));
            if reduce {
                sys.enable_trcd_reduction(2_048, 9_000);
            }
            let mut w = polybench::by_name("mvt", PolySize::Mini).expect("kernel");
            section(
                &mut out,
                if reduce {
                    "reduced trcd"
                } else {
                    "nominal trcd"
                },
                &sys.run(w.as_mut()),
            );
        }
        out
    });
}

#[test]
fn snapshot_fig14_sim_speed() {
    // Fig. 14: EasyDRAM vs. the software-simulator baseline on one kernel.
    // `host_wall_seconds` is measured host time — zeroed before pinning.
    check_snapshot_at_all_thread_counts("fig14_sim_speed", || {
        let mut out = String::new();
        let mut sys = System::new(small(TimingMode::TimeScaling));
        let mut w = polybench::by_name("durbin", PolySize::Mini).expect("kernel");
        section(&mut out, "easydram durbin", &sys.run(w.as_mut()));
        let mut ram = RamulatorSystem::new(RamulatorConfig::default());
        let mut w = polybench::by_name("durbin", PolySize::Mini).expect("kernel");
        let mut r = ram.run(w.as_mut());
        r.host_wall_seconds = 0.0;
        section(&mut out, "ramulator durbin", &r);
        out
    });
}

#[test]
fn snapshot_fig_channel_sweep() {
    // Channel sweep: an interleaved read batch on a 2-channel small system.
    // The multi-lane geometry is exactly what the parallel serve engine
    // fans out, so this figure is the sharpest thread-sweep probe.
    check_snapshot_at_all_thread_counts("fig_channel_sweep", || {
        let mut cfg = small(TimingMode::Reference);
        cfg.dram.geometry.channels = 2;
        let mut sys = System::new(cfg);
        let tile = sys.tile_mut();
        for i in 0..64u64 {
            tile.post_request(
                RequestKind::Read {
                    addr: 0x4_0000 + i * 64,
                },
                0,
            );
        }
        let release = tile.drain_writes(0);
        let mut out = String::new();
        section(&mut out, "last release cycle", &release);
        section(&mut out, "report", &sys.report("channel_sweep"));
        out
    });
}

#[test]
fn snapshot_fig_multicore_contention() {
    // Multi-core contention: a shuffled chase co-run against a streaming
    // writer on one shared channel. Exercises the run-ahead co-scheduler
    // (threads > 1) against baton order (threads = 1).
    check_snapshot_at_all_thread_counts("fig_multicore_contention", || {
        let mut cfg = small(TimingMode::Reference);
        cfg.dram.geometry.bank_groups = 2;
        cfg.dram.geometry.banks_per_group = 4;
        cfg.core.l1 = Some(CacheConfig {
            size_bytes: 4 * 1024,
            ways: 2,
            hit_latency_cycles: 4,
        });
        cfg.core.l2 = Some(CacheConfig {
            size_bytes: 32 * 1024,
            ways: 4,
            hit_latency_cycles: 12,
        });
        let mut mc = MultiCoreSystem::new(cfg, 2);
        mc.set_quantum(40);
        let mut chase = LatMemRd::shuffled_with_loads(16 * 1024, 64, 2_000);
        let mut writer = StreamWriter::new(64 * 1024, 50_000);
        let r = mc.co_run(&mut [&mut chase, &mut writer]);
        let mut out = String::new();
        section(&mut out, "chase cycles/load", &chase.cycles_per_load());
        section(&mut out, "co-run aggregate", &r.aggregate);
        out
    });
}

#[test]
fn snapshot_model_counterexamples() {
    // Model-checker self-validation: the minimized counterexamples for the
    // three named coarse table mutants are pinned byte-for-byte. The
    // explorer and minimizer are fully deterministic (DFS in alphabet
    // order, greedy left-to-right delta debugging), so any change to the
    // timing tables, the trackers, or the checker's search order shows up
    // as a diff here. No tile is involved, so this snapshot stays outside
    // the thread sweep.
    use easydram_model::{
        corrupt_tfaw_window, format_trace, swap_bank_group_act_spacing, verdict, zero_rfm_fold,
        ModelConfig,
    };
    let mut cfg = ModelConfig::small(4);
    cfg.act_rows = 1;
    cfg.jitter = false;
    cfg.fail_fast = true;
    cfg.max_violations = 1;
    let mut out = String::new();
    for m in [
        corrupt_tfaw_window(&cfg.timing),
        swap_bank_group_act_spacing(&cfg.timing),
        zero_rfm_fold(&cfg.timing),
    ] {
        let v = verdict(&cfg, m);
        let _ = writeln!(&mut out, "== {} ==", v.label);
        let _ = writeln!(
            &mut out,
            "static: {}\ndynamic: {}",
            if v.static_caught { "caught" } else { "missed" },
            if v.dynamic_caught { "caught" } else { "missed" },
        );
        let _ = writeln!(&mut out, "detail: {}", v.detail);
        let _ = writeln!(
            &mut out,
            "minimized trace:\n{}",
            format_trace(&v.counterexample)
        );
    }
    check_snapshot("model_counterexamples", &out);
}

#[test]
fn snapshot_fig_rowhammer() {
    // RowHammer attack/defense: unmitigated vs. Graphene at one intensity.
    check_snapshot_at_all_thread_counts("fig_rowhammer", || {
        let mut out = String::new();
        for defense in ["none", "graphene"] {
            let mut cfg = small(TimingMode::Reference);
            cfg.dram.variation.disturb_enabled = true;
            cfg.dram.variation.hc_first = (2_048, 4_096);
            let mut sys = System::new(cfg.clone());
            if defense == "graphene" {
                sys.install_controller(Box::new(GrapheneController::new(512, 8)));
            }
            let mut kernel = HammerKernel::in_bank(
                &cfg.dram.geometry,
                cfg.mapping,
                0,
                500,
                HammerPattern::DoubleSided,
                1_200,
            );
            sys.run(&mut kernel);
            section(&mut out, &format!("{defense} flips"), &kernel.bit_flips());
            section(&mut out, &format!("{defense} report"), &sys.report(defense));
        }
        out
    });
}
