//! Shape assertions for every reproduced experiment: the qualitative claims
//! of each paper table/figure, enforced at test time on reduced problem
//! sizes (the full harnesses live in `crates/bench/src/bin/`).

use easydram_suite::cpu::Workload;
use easydram_suite::easydram::{System, SystemConfig, TimingMode};
use easydram_suite::ramulator::{RamulatorConfig, RamulatorSystem};
use easydram_suite::workloads::lmbench::LatMemRd;
use easydram_suite::workloads::micro::{CpuCopy, CpuInit, FlushMode, RowCloneCopy, RowCloneInit};
use easydram_suite::workloads::{polybench, PolySize};

fn quick_system(mode: TimingMode) -> System {
    let mut cfg = SystemConfig::jetson_nano(mode);
    cfg.rowclone_test_trials = 100;
    System::new(cfg)
}

fn quick_pidram() -> System {
    let mut cfg = SystemConfig::pidram_like();
    cfg.rowclone_test_trials = 100;
    System::new(cfg)
}

fn lmbench_cycles_per_load(mut sys: System, size: u64) -> f64 {
    let mut w = LatMemRd::new(size, 64);
    w.run(sys.cpu());
    w.cycles_per_load().expect("ran")
}

/// §6 / Fig. 8: the time-scaled system tracks the reference latency profile;
/// the No-TS system reports far fewer cycles per memory access.
#[test]
fn fig8_latency_profile_shape() {
    let mem = 2 * 1024 * 1024; // beyond the 512 KiB L2
    let reference = lmbench_cycles_per_load(quick_system(TimingMode::Reference), mem);
    let ts = lmbench_cycles_per_load(quick_system(TimingMode::TimeScaling), mem);
    let no_ts = lmbench_cycles_per_load(quick_pidram(), mem);
    assert!(
        (ts - reference).abs() / reference < 0.02,
        "TS {ts} must track reference {reference}"
    );
    assert!(
        no_ts * 1.5 < reference,
        "No-TS ({no_ts}) must underestimate the real system ({reference})"
    );
    // Cache plateaus: L1 region ~ hit latency, L2 region in between.
    let l1 = lmbench_cycles_per_load(quick_system(TimingMode::Reference), 8 * 1024);
    let l2 = lmbench_cycles_per_load(quick_system(TimingMode::Reference), 128 * 1024);
    assert!(l1 < 8.0, "L1 plateau {l1}");
    assert!(l1 < l2 && l2 < reference, "{l1} < {l2} < {reference}");
}

/// §6 validation: time scaling within 1% of the native reference across a
/// sample of PolyBench kernels.
#[test]
fn validation_time_scaling_accuracy() {
    for name in ["gemm", "gemver", "durbin", "jacobi-1d"] {
        let cycles = |mode| {
            let mut sys = System::new(SystemConfig::validation_1ghz(mode));
            let mut w = polybench::by_name(name, PolySize::Mini).expect("kernel");
            sys.run(w.as_mut()).emulated_cycles
        };
        let reference = cycles(TimingMode::Reference);
        let ts = cycles(TimingMode::TimeScaling);
        let err = (ts as f64 - reference as f64).abs() / reference as f64;
        assert!(
            err < 0.01,
            "{name}: TS {ts} vs reference {reference} ({err:.4})"
        );
    }
}

fn measure(sys: &mut System, w: &mut dyn Workload) -> u64 {
    let r = sys.run(w);
    w.measured_cycles().unwrap_or(r.emulated_cycles)
}

/// Fig. 10: RowClone No-Flush speedups — No-TS ≫ TS (the paper's headline
/// skew), and both beat their CPU baselines on copy.
#[test]
fn fig10_rowclone_noflush_shape() {
    let bytes = 64 * 1024;
    let speedup = |mut sys: System| {
        let cpu = measure(&mut sys, &mut CpuCopy::new(bytes));
        let mut sys2 = quick_like(&sys);
        let rc = measure(&mut sys2, &mut RowCloneCopy::new(bytes, FlushMode::NoFlush));
        cpu as f64 / rc as f64
    };
    fn quick_like(sys: &System) -> System {
        System::new(sys.tile().config().clone())
    }
    let ts = speedup(quick_system(TimingMode::TimeScaling));
    let no_ts = speedup(quick_pidram());
    assert!(ts > 5.0, "TS copy speedup {ts} must be material");
    assert!(
        ts < 40.0,
        "TS copy speedup {ts} must stay in the paper's decade"
    );
    assert!(
        no_ts > 4.0 * ts,
        "No-TS ({no_ts}) must skew far above TS ({ts})"
    );
}

/// Fig. 10(b): Init benefits are much smaller than Copy benefits, and the
/// idealized Ramulator model over-reports Init (no fallback rows).
#[test]
fn fig10_init_ordering() {
    let bytes = 256 * 1024;
    let mut sys = quick_system(TimingMode::TimeScaling);
    let cpu = measure(&mut sys, &mut CpuInit::new(bytes));
    let mut sys = quick_system(TimingMode::TimeScaling);
    let mut rc_init = RowCloneInit::new(bytes, FlushMode::NoFlush);
    let rc = measure(&mut sys, &mut rc_init);
    let ts_init = cpu as f64 / rc as f64;
    assert!(
        rc_init.outcome().fallback_rows > 0,
        "real chips leave unclonable rows"
    );
    assert_eq!(
        rc_init.outcome().mismatches,
        0,
        "fallback keeps init correct"
    );

    let mut ram = RamulatorSystem::new(RamulatorConfig::default());
    let cpu_r = measure_ram(&mut ram, &mut CpuInit::new(bytes));
    let mut ram = RamulatorSystem::new(RamulatorConfig::default());
    let rc_r = measure_ram(&mut ram, &mut RowCloneInit::new(bytes, FlushMode::NoFlush));
    let ram_init = cpu_r as f64 / rc_r as f64;
    assert!(
        ram_init > ts_init,
        "idealized DRAM over-reports init: ramulator {ram_init} vs easydram {ts_init}"
    );

    // Copy beats init on the same system (paper: 15.0x vs 1.8x).
    let mut sys = quick_system(TimingMode::TimeScaling);
    let cpu_c = measure(&mut sys, &mut CpuCopy::new(bytes));
    let mut sys = quick_system(TimingMode::TimeScaling);
    let rc_c = measure(&mut sys, &mut RowCloneCopy::new(bytes, FlushMode::NoFlush));
    let ts_copy = cpu_c as f64 / rc_c as f64;
    assert!(ts_copy > ts_init, "copy ({ts_copy}) > init ({ts_init})");
}

fn measure_ram(sim: &mut RamulatorSystem, w: &mut dyn Workload) -> u64 {
    let r = sim.run(w);
    w.measured_cycles().unwrap_or(r.simulated_cycles)
}

/// Fig. 11: CLFLUSH coherence overheads shrink RowClone's benefit, hurting
/// small sizes the most (the paper's Init degrades below ~256 KB).
#[test]
fn fig11_clflush_overheads() {
    let bytes = 64 * 1024;
    let mut sys = quick_system(TimingMode::TimeScaling);
    let noflush = measure(&mut sys, &mut RowCloneCopy::new(bytes, FlushMode::NoFlush));
    let mut sys = quick_system(TimingMode::TimeScaling);
    let clflush = measure(&mut sys, &mut RowCloneCopy::new(bytes, FlushMode::ClFlush));
    assert!(
        clflush > noflush * 2,
        "cache maintenance must dominate small copies: {clflush} vs {noflush}"
    );
    // Init at small sizes degrades versus the CPU baseline.
    let mut sys = quick_system(TimingMode::TimeScaling);
    let cpu = measure(&mut sys, &mut CpuInit::new(8 * 1024));
    let mut sys = quick_system(TimingMode::TimeScaling);
    let rc = measure(
        &mut sys,
        &mut RowCloneInit::new(8 * 1024, FlushMode::ClFlush),
    );
    assert!(
        rc > cpu / 2,
        "small CLFLUSH init must lose most of its benefit"
    );
}

/// Fig. 12: every row operates below nominal tRCD; most are strong; weak
/// rows exist and cluster.
#[test]
fn fig12_variation_statistics() {
    let sys = quick_system(TimingMode::Reference);
    let var = sys.tile().device().variation().clone();
    let mut strong = 0;
    let mut weak = 0;
    for bank in 0..2 {
        for row in 0..2048u32 {
            let t = var.row_min_trcd_ps(bank, row);
            assert!(t < 13_500, "all rows below nominal");
            if t <= 9_000 {
                strong += 1;
            } else {
                weak += 1;
            }
        }
    }
    let frac = f64::from(strong) / f64::from(strong + weak);
    assert!(frac > 0.55, "strong majority, got {frac}");
    assert!(weak > 0, "weak rows must exist");
}

/// Fig. 13: tRCD reduction never slows a workload down materially and the
/// Bloom filter prevents all corruption.
#[test]
fn fig13_trcd_reduction_safety_and_benefit() {
    for name in ["gemver", "mvt"] {
        let run = |reduce: bool| {
            let mut sys = quick_system(TimingMode::TimeScaling);
            if reduce {
                sys.enable_trcd_reduction(2_048, 9_000);
            }
            let mut w = polybench::by_name(name, PolySize::Mini).expect("kernel");
            let r = sys.run(w.as_mut());
            (r.emulated_cycles, r.dram.corrupted_reads)
        };
        let (nominal, _) = run(false);
        let (reduced, corrupted) = run(true);
        assert_eq!(corrupted, 0, "{name}: Bloom filter must prevent corruption");
        let delta = reduced as f64 / nominal as f64;
        assert!(
            delta < 1.005,
            "{name}: reduction must not slow down ({delta})"
        );
    }
}

/// Fig. 14: EasyDRAM's modeled simulation speed beats the software
/// simulator's, most on the least memory-intensive workload.
#[test]
fn fig14_simulation_speed_shape() {
    let speed = |name: &str| {
        let mut sys = quick_system(TimingMode::TimeScaling);
        let mut w = polybench::by_name(name, PolySize::Mini).expect("kernel");
        let er = sys.run(w.as_mut());
        let mut ram = RamulatorSystem::new(RamulatorConfig::default());
        let mut w = polybench::by_name(name, PolySize::Mini).expect("kernel");
        let rr = ram.run(w.as_mut());
        (
            er.sim_speed_hz,
            rr.modeled_speed_hz,
            er.mem_reads_per_kilo_cycle,
        )
    };
    let (easy_durbin, ram_durbin, mpkc_durbin) = speed("durbin");
    let (easy_gesummv, ram_gesummv, mpkc_gesummv) = speed("gesummv");
    assert!(
        easy_durbin > ram_durbin,
        "EasyDRAM faster than software simulation"
    );
    assert!(easy_gesummv > ram_gesummv);
    assert!(
        mpkc_durbin < mpkc_gesummv,
        "durbin is the least memory-intensive"
    );
    let ratio_durbin = easy_durbin / ram_durbin;
    let ratio_gesummv = easy_gesummv / ram_gesummv;
    assert!(
        ratio_durbin > ratio_gesummv,
        "the advantage grows as memory intensity falls: {ratio_durbin} vs {ratio_gesummv}"
    );
    // Table 1: EasyDRAM in the ~10M cycles/s class, software sim in ~1M.
    assert!(easy_durbin > 5e6, "EasyDRAM class: {easy_durbin}");
    assert!(ram_durbin < 3e6, "software-simulator class: {ram_durbin}");
}
