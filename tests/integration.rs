//! Cross-crate integration tests: data integrity end-to-end through every
//! layer (workload → core → caches → SMC → DRAM Bender → device) and
//! cross-simulator functional equivalence.

use easydram_suite::cpu::{CpuApi, RowCloneStatus, Workload};
use easydram_suite::easydram::{System, SystemConfig, TimingMode};
use easydram_suite::ramulator::{RamulatorConfig, RamulatorSystem};
use easydram_suite::workloads::{polybench, PolySize};

/// Every PolyBench kernel computes the same checksum on the EasyDRAM system
/// (all three timing modes) and on the Ramulator baseline: the memory
/// systems are functionally transparent even though their timing models
/// differ completely.
#[test]
fn all_28_kernels_compute_identical_results_on_every_memory_system() {
    for name in easydram_suite::workloads::polybench::all_names() {
        let checksum_easy = |mode: TimingMode| -> f64 {
            let mut sys = System::new(SystemConfig::small_for_tests(mode));
            let mut w = polybench::by_name(name, PolySize::Mini).expect("kernel");
            sys.run(w.as_mut());
            w.result_checksum()
                .unwrap_or_else(|| panic!("{name}: no checksum"))
        };
        let ts = checksum_easy(TimingMode::TimeScaling);
        let reference = checksum_easy(TimingMode::Reference);
        let ram = {
            let mut sim = RamulatorSystem::new(RamulatorConfig::default());
            let mut w = polybench::by_name(name, PolySize::Mini).expect("kernel");
            sim.run(w.as_mut());
            w.result_checksum()
                .unwrap_or_else(|| panic!("{name}: no checksum"))
        };
        assert_eq!(ts, reference, "{name}: timing mode must not change results");
        assert_eq!(ts, ram, "{name}: EasyDRAM vs Ramulator results differ");
        assert!(ts.is_finite(), "{name}");
    }
}

/// RowClone with a deterministic always-reliable chip produces exact copies
/// through the real command path; with the default chip, fallback preserves
/// correctness.
#[test]
fn rowclone_end_to_end_data_integrity() {
    let mut cfg = SystemConfig::small_for_tests(TimingMode::TimeScaling);
    // Only Always/Never pairs: no silent flaky failures in this test.
    cfg.dram.variation.pair_flaky_milli = 0;
    let mut sys = System::new(cfg);
    let bytes = 8 * 8192u64;
    let (src, dst) = sys.cpu().rowclone_alloc_copy(bytes).expect("fits");
    for i in 0..bytes / 8 {
        sys.cpu().store_u64(src + i * 8, i ^ 0x1234_5678);
    }
    for line in 0..bytes / 64 {
        sys.cpu().clflush(src + line * 64);
    }
    sys.cpu().fence();
    for r in 0..bytes / 8192 {
        let s = src + r * 8192;
        let d = dst + r * 8192;
        if sys.cpu().rowclone_row(s, d) != RowCloneStatus::Copied {
            for i in 0..1024u64 {
                let v = sys.cpu().load_u64(s + i * 8);
                sys.cpu().store_u64(d + i * 8, v);
            }
        }
    }
    sys.cpu().fence();
    for i in 0..bytes / 8 {
        assert_eq!(sys.cpu().load_u64(dst + i * 8), i ^ 0x1234_5678, "word {i}");
    }
}

/// Disabling the Bloom filter's protection (accessing weak rows at reduced
/// tRCD) corrupts real data — the failure the paper's profiling+filter
/// design exists to prevent.
#[test]
fn unprotected_reduced_trcd_corrupts_weak_rows() {
    // Full geometry: weak clusters span the whole characterization grid.
    let mut sys = System::new(SystemConfig::jetson_nano(TimingMode::Reference));
    // Find a weak row via ground truth.
    let geo = sys.tile().config().dram.geometry.clone();
    let weak = {
        let var = sys.tile().device().variation();
        (0..geo.rows_per_bank)
            .find(|&r| var.line_min_trcd_ps(0, r, 0) > 9_400)
            .expect("weak rows exist")
    };
    let strong = {
        let var = sys.tile().device().variation();
        (0..geo.rows_per_bank)
            .find(|&r| var.line_min_trcd_ps(0, r, 0) <= 8_600)
            .expect("strong rows exist")
    };
    let issue = sys.cpu().now_cycles();
    // Reading the strong line at 9 ns works; the weak one fails.
    assert!(sys.tile_mut().profile_line(0, strong, 0, 9_000, issue));
    assert!(!sys.tile_mut().profile_line(0, weak, 0, 8_500, issue));
}

/// The timing-mode ordering holds for a full kernel, not just
/// microbenchmarks: time scaling tracks the reference exactly, and the
/// No-TS system observes far fewer stall cycles per memory request (the
/// Fig. 8 effect at workload scale).
#[test]
fn timing_modes_order_full_kernels() {
    let run = |cfg: SystemConfig| {
        let mut sys = System::new(cfg);
        let mut w = polybench::Gesummv::new(PolySize::Mini);
        let r = sys.run(&mut w);
        (
            r.emulated_cycles as f64,
            r.core.stall_cycles as f64 / r.core.mem_reads.max(1) as f64,
        )
    };
    let (reference, ref_stall) = run(SystemConfig::small_for_tests(TimingMode::Reference));
    let (ts, _) = run(SystemConfig::small_for_tests(TimingMode::TimeScaling));
    assert!((ts - reference).abs() / reference < 0.01);
    assert!(ref_stall > 0.0, "gesummv must touch memory");
    // The No-TS skew on dependent accesses (Fig. 8's effect) at kernel
    // scale: a dependent pointer chase observes far fewer cycles per load
    // on the 50 MHz system than on the modeled 1.43 GHz system.
    let chase = |cfg: SystemConfig| {
        let mut sys = System::new(cfg);
        let mut w = easydram_suite::workloads::lmbench::LatMemRd::new(1024 * 1024, 64);
        w.run(sys.cpu());
        w.cycles_per_load().expect("ran")
    };
    let ref_cpl = chase(SystemConfig::small_for_tests(TimingMode::Reference));
    let mut nots_cfg = SystemConfig::pidram_like();
    nots_cfg.dram = easydram_suite::dram::DramConfig::small_for_tests();
    let nots_cpl = chase(nots_cfg);
    assert!(
        nots_cpl * 1.5 < ref_cpl,
        "No-TS must underestimate dependent latency: {nots_cpl} vs {ref_cpl}"
    );
}
