//! Permutation proofs for the parallel engine's deterministic reduction.
//!
//! The threaded serve path accumulates per-lane [`SmcStats`] /
//! [`ChannelStats`] / [`RequestorStats`] shards and folds them into the
//! tile totals. For the parallel engine to be byte-identical to the
//! sequential one at every thread count, those merges must be
//! order-invariant: commutative and associative over any sharding of the
//! same activity. These tests generate random shards, reduce them in the
//! original order, in a random permutation, and as a pairwise tree, and
//! assert all three reductions agree — including the `peak_batch` field,
//! which is a maximum rather than a sum and would silently fabricate batch
//! sizes if merged additively.

use proptest::prelude::*;

use easydram::report::{BankRowOutcomes, ChannelStats, RequestorStats, SmcStats};
use easydram::{LogHistogram, MetricsRegistry, ServeResult, TileMetrics};

/// One generated shard: 32 bytes of entropy, spread across every counter.
type Raw = [u8; 32];

fn serve_from(b: &Raw) -> ServeResult {
    ServeResult {
        served: b[7] as u64,
        row_hits: b[8] as u64,
        row_misses: b[9] as u64,
        row_conflicts: b[10] as u64,
        reduced_trcd_accesses: b[11] as u64,
    }
}

fn smc_from(b: &Raw) -> SmcStats {
    SmcStats {
        requests: b[0] as u64,
        rocket_cycles: b[1] as u64,
        hw_cycles: b[2] as u64,
        batches: b[3] as u64,
        posted_writes: b[4] as u64,
        forced_drains: b[5] as u64,
        peak_batch: b[6] as u64,
        serve: serve_from(b),
        rowclone_fallbacks: b[12] as u64,
    }
}

fn channel_from(b: &Raw) -> ChannelStats {
    // Vectors of *different* lengths per shard: a lane that never touched
    // rank 2 reports a shorter vector, and merge must grow-then-add.
    let ranks = (b[13] % 4) as usize;
    let banks = (b[14] % 5) as usize;
    ChannelStats {
        requests: b[0] as u64,
        rocket_cycles: b[1] as u64,
        hw_cycles: b[2] as u64,
        batches: b[3] as u64,
        serve: serve_from(b),
        refreshes_per_rank: (0..ranks).map(|i| b[15 + i] as u64).collect(),
        acts_per_bank: (0..banks).map(|i| b[19 + i] as u64).collect(),
        row_outcomes_per_bank: (0..banks)
            .map(|i| BankRowOutcomes {
                hits: b[24 + (i % 4)] as u64,
                misses: b[25 + (i % 4)] as u64,
                conflicts: b[26 + (i % 4)] as u64,
            })
            .collect(),
    }
}

fn hist_from(b: &Raw) -> LogHistogram {
    let mut h = LogHistogram::default();
    for (i, &byte) in b.iter().enumerate() {
        // Spread samples across the full bucket range: shift some bytes up
        // so high buckets (including the `u64::MAX` tail) get exercised.
        h.record(u64::from(byte) << (2 * (i % 24)));
    }
    h
}

fn metrics_from(b: &Raw) -> TileMetrics {
    let mut rot = *b;
    rot.rotate_left(5);
    let mut rot2 = *b;
    rot2.rotate_left(11);
    TileMetrics {
        request_latency: hist_from(b),
        read_latency: hist_from(&rot),
        write_latency: hist_from(&rot2),
        queue_depth: hist_from(b),
        batch_size: hist_from(&rot),
    }
}

fn requestor_from(id: u32, b: &Raw) -> RequestorStats {
    RequestorStats {
        requestor: id,
        requests: b[0] as u64,
        reads: b[1] as u64,
        writes: b[2] as u64,
        rowclones: b[3] as u64,
        row_hits: b[4] as u64,
        row_misses: b[5] as u64,
        row_conflicts: b[6] as u64,
        rocket_cycles: b[7] as u64,
        dram_occupancy_ps: b[8] as u64,
        column_ops: b[9] as u64,
        stall_cycles: b[10] as u64,
    }
}

/// Deterministic Fisher–Yates driven by a generated seed (splitmix64), so
/// each proptest case exercises a different permutation reproducibly.
fn shuffled<T: Clone>(items: &[T], mut state: u64) -> Vec<T> {
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut v = items.to_vec();
    for i in (1..v.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    v
}

/// Left fold with `merge`.
fn fold<T: Default, F: Fn(&mut T, &T)>(shards: &[T], merge: F) -> T {
    let mut acc = T::default();
    for s in shards {
        merge(&mut acc, s);
    }
    acc
}

/// Pairwise tree reduction with `merge` — a different association of the
/// same shards, as a work-stealing scheduler might produce.
fn tree_reduce<T: Default + Clone, F: Fn(&mut T, &T) + Copy>(shards: &[T], merge: F) -> T {
    match shards.len() {
        0 => T::default(),
        1 => shards[0].clone(),
        n => {
            let (lo, hi) = shards.split_at(n / 2);
            let mut left = tree_reduce(lo, merge);
            let right = tree_reduce(hi, merge);
            merge(&mut left, &right);
            left
        }
    }
}

fn raw_shards() -> impl Strategy<Value = Vec<Raw>> {
    prop::collection::vec(prop::array::uniform32(any::<u8>()), 1..12)
}

proptest! {
    /// Any permutation and any association of SmcStats shards reduces to
    /// the same record.
    #[test]
    fn smc_merge_is_order_invariant(raws in raw_shards(), seed in any::<u64>()) {
        let shards: Vec<SmcStats> = raws.iter().map(smc_from).collect();
        let in_order = fold(&shards, SmcStats::merge);
        let permuted = fold(&shuffled(&shards, seed), SmcStats::merge);
        let tree = tree_reduce(&shards, SmcStats::merge);
        prop_assert_eq!(in_order, permuted);
        prop_assert_eq!(in_order, tree);
    }

    /// `peak_batch` reduces as a maximum: the merged record reports the
    /// largest batch any shard carried, never the sum (which would claim a
    /// batch size no pass ever executed).
    #[test]
    fn peak_batch_reduces_as_max_not_sum(raws in raw_shards(), seed in any::<u64>()) {
        let shards: Vec<SmcStats> = raws.iter().map(smc_from).collect();
        let expected_peak = shards.iter().map(|s| s.peak_batch).max().unwrap_or(0);
        let merged = fold(&shuffled(&shards, seed), SmcStats::merge);
        prop_assert_eq!(merged.peak_batch, expected_peak);
        // Every summed counter still partitions exactly.
        let total_requests: u64 = shards.iter().map(|s| s.requests).sum();
        prop_assert_eq!(merged.requests, total_requests);
    }

    /// ChannelStats merge is order-invariant even when shards report
    /// per-rank/per-bank vectors of different lengths.
    #[test]
    fn channel_merge_is_order_invariant(raws in raw_shards(), seed in any::<u64>()) {
        let shards: Vec<ChannelStats> = raws.iter().map(channel_from).collect();
        let in_order = fold(&shards, ChannelStats::merge);
        let permuted = fold(&shuffled(&shards, seed), ChannelStats::merge);
        let tree = tree_reduce(&shards, ChannelStats::merge);
        prop_assert_eq!(&in_order, &permuted);
        prop_assert_eq!(&in_order, &tree);
        // The merged vectors are exactly as long as the longest shard's.
        let max_ranks = shards.iter().map(|s| s.refreshes_per_rank.len()).max().unwrap_or(0);
        let max_banks = shards.iter().map(|s| s.acts_per_bank.len()).max().unwrap_or(0);
        prop_assert_eq!(in_order.refreshes_per_rank.len(), max_ranks);
        prop_assert_eq!(in_order.acts_per_bank.len(), max_banks);
    }

    /// Log2 latency histograms merge commutatively and associatively, so
    /// the observability layer's percentile data survives any sharding the
    /// parallel engine produces — same proof obligation as the counters.
    #[test]
    fn histogram_merge_is_order_invariant(raws in raw_shards(), seed in any::<u64>()) {
        let shards: Vec<LogHistogram> = raws.iter().map(hist_from).collect();
        let in_order = fold(&shards, LogHistogram::merge);
        let permuted = fold(&shuffled(&shards, seed), LogHistogram::merge);
        let tree = tree_reduce(&shards, LogHistogram::merge);
        prop_assert_eq!(in_order, permuted);
        prop_assert_eq!(in_order, tree);
        // Sample count and sum partition exactly across shards.
        let n: u64 = shards.iter().map(|h| h.count).sum();
        prop_assert_eq!(in_order.count, n);
    }

    /// Whole [`TileMetrics`] bundles (and the name-keyed registry view)
    /// reduce order-invariantly, field by field.
    #[test]
    fn tile_metrics_merge_is_order_invariant(raws in raw_shards(), seed in any::<u64>()) {
        let shards: Vec<TileMetrics> = raws.iter().map(metrics_from).collect();
        let in_order = fold(&shards, TileMetrics::merge);
        let permuted = fold(&shuffled(&shards, seed), TileMetrics::merge);
        let tree = tree_reduce(&shards, TileMetrics::merge);
        prop_assert_eq!(in_order, permuted);
        prop_assert_eq!(in_order, tree);
        // The registry projection agrees regardless of merge order too.
        let mut reg_in_order = MetricsRegistry::default();
        for s in &shards {
            reg_in_order.merge(&s.registry());
        }
        let mut reg_permuted = MetricsRegistry::default();
        for s in &shuffled(&shards, seed) {
            reg_permuted.merge(&s.registry());
        }
        prop_assert_eq!(reg_in_order, reg_permuted);
    }

    /// Rebasing a merged histogram by a window-start snapshot recovers
    /// exactly the activity after the snapshot — the windowing identity the
    /// report layer relies on for every stat.
    #[test]
    fn histogram_window_rebase_is_exact(raws in raw_shards()) {
        let shards: Vec<LogHistogram> = raws.iter().map(hist_from).collect();
        let baseline = shards[0];
        let mut total = baseline;
        for s in &shards[1..] {
            total.merge(s);
        }
        total.subtract_baseline(&baseline);
        let window = fold(&shards[1..], LogHistogram::merge);
        prop_assert_eq!(total, window);
    }

    /// RequestorStats merge is order-invariant for shards of one requestor.
    #[test]
    fn requestor_merge_is_order_invariant(raws in raw_shards(), seed in any::<u64>(), id in 0u32..8) {
        let shards: Vec<RequestorStats> = raws.iter().map(|b| requestor_from(id, b)).collect();
        let base = || RequestorStats::new(id);
        let fold_req = |shards: &[RequestorStats]| {
            let mut acc = base();
            for s in shards {
                acc.merge(s);
            }
            acc
        };
        let in_order = fold_req(&shards);
        let permuted = fold_req(&shuffled(&shards, seed));
        prop_assert_eq!(in_order, permuted);
        prop_assert_eq!(in_order.requestor, id);
    }
}

/// The concrete regression the permutation tests generalize: two serve
/// passes of 6 and 4 requests peak at 6, not 10.
#[test]
fn peak_batch_two_pass_regression() {
    let mut total = SmcStats::default();
    total.merge(&SmcStats {
        requests: 6,
        peak_batch: 6,
        ..SmcStats::default()
    });
    total.merge(&SmcStats {
        requests: 4,
        peak_batch: 4,
        ..SmcStats::default()
    });
    assert_eq!(total.requests, 10);
    assert_eq!(total.peak_batch, 6, "peak is a max, not a sum");
}
