//! Differential timing-oracle tests at the workspace level: the
//! table-driven rank tracker must agree with the frozen rule-based checker
//! (compiled via the dram crate's `oracle` feature) on randomized command
//! streams over *rank-folded* geometries — the multi-rank configurations the
//! channel-sharded memory system actually runs.

use easydram_dram::bank::RankTiming;
use easydram_dram::{DramCommand, Geometry, OracleRankTiming, TimingParams};
use proptest::collection::vec;
use proptest::prelude::*;

/// Two ranks folded into the bank-group dimension, as
/// `Geometry::per_channel` does for the sharded memory system: 2 ranks ×
/// 4 groups × 4 banks → 8 folded groups, 32 banks.
fn folded_two_rank_geometry() -> Geometry {
    let g = Geometry {
        ranks: 2,
        ..Geometry::default()
    };
    let folded = g.per_channel();
    assert_eq!(folded.banks(), 2 * Geometry::default().banks());
    folded
}

type Op = (u8, u32, u32, u32);

fn decode(op: Op, banks: u32) -> DramCommand {
    let (kind, bank, row, col) = op;
    let bank = bank % banks;
    match kind {
        0 | 7 => DramCommand::Activate { bank, row },
        1 => DramCommand::Precharge { bank },
        2 => DramCommand::PrechargeAll,
        3 | 8 => DramCommand::Read { bank, col },
        4 | 9 => DramCommand::Write {
            bank,
            col,
            data: [0x5A; 64],
        },
        5 => DramCommand::Refresh,
        _ => DramCommand::RefreshRow { bank, row },
    }
}

fn run_stream(ops: &[Op], dts: &[u64], timing: &TimingParams, issue_at_earliest: bool) {
    let geometry = folded_two_rank_geometry();
    let banks = geometry.banks();
    let mut table = RankTiming::new(geometry.clone(), timing.clone());
    let mut oracle = OracleRankTiming::new(geometry, timing.clone());
    let mut now = 0u64;
    for (op, dt) in ops.iter().zip(dts) {
        let cmd = decode(*op, banks);
        now += dt;
        let at = if issue_at_earliest {
            now.max(table.earliest_issue_ps(&cmd))
        } else {
            now
        };
        assert_eq!(
            table.earliest_issue_ps(&cmd),
            oracle.earliest_issue_ps(&cmd),
            "earliest diverged for {cmd} at {at}"
        );
        assert_eq!(
            table.check(&cmd, at),
            oracle.check(&cmd, at),
            "violations diverged for {cmd} at {at}"
        );
        table.apply(&cmd, at);
        oracle.apply(&cmd, at);
        now = at;
        for b in 0..banks {
            assert_eq!(table.open_row(b), oracle.open_row(b), "bank {b} state");
        }
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..10, 0u32..32, 0u32..64, 0u32..128)
}

/// Gaps straddling burst spacing, row-cycle times, the tRFC edge, and
/// tREFI-scale jumps, so streams cross refresh windows mid-flight.
fn dt_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..2_000,
        2_000u64..40_000,
        349_000u64..351_000,
        7_790_000u64..7_810_000,
    ]
}

proptest! {
    /// Raw streams over the folded two-rank geometry: commands issued
    /// whether legal or not, both trackers must agree on everything.
    #[test]
    fn folded_rank_raw_streams_agree(
        ops in vec(op_strategy(), 1..150),
        dts in vec(dt_strategy(), 1..150),
    ) {
        let n = ops.len().min(dts.len());
        run_stream(&ops[..n], &dts[..n], &TimingParams::ddr4_1333(), false);
    }

    /// Scheduled streams: issuing at the hot path's earliest legal time
    /// must produce identical ready-cycles under the oracle.
    #[test]
    fn folded_rank_scheduled_streams_agree(
        ops in vec(op_strategy(), 1..150),
        dts in vec(dt_strategy(), 1..150),
    ) {
        let n = ops.len().min(dts.len());
        run_stream(&ops[..n], &dts[..n], &TimingParams::ddr4_1333(), true);
    }

    /// The faster 2400 bin has a different tCCD_S/tBURST relationship
    /// (burst-floored); agreement must hold there too.
    #[test]
    fn ddr4_2400_streams_agree(
        ops in vec(op_strategy(), 1..100),
        dts in vec(dt_strategy(), 1..100),
    ) {
        let n = ops.len().min(dts.len());
        run_stream(&ops[..n], &dts[..n], &TimingParams::ddr4_2400(), false);
    }
}

/// A refresh issued exactly at a tREFI boundary followed by commands landing
/// on the tRFC edge — one ps early, exactly on, one ps late.
#[test]
fn trfc_edge_is_identical() {
    let t = TimingParams::ddr4_1333();
    let geometry = folded_two_rank_geometry();
    let mut table = RankTiming::new(geometry.clone(), t.clone());
    let mut oracle = OracleRankTiming::new(geometry, t.clone());
    table.apply(&DramCommand::Refresh, t.t_refi_ps);
    oracle.apply(&DramCommand::Refresh, t.t_refi_ps);
    let act = DramCommand::Activate { bank: 17, row: 3 };
    for at in [
        t.t_refi_ps + t.t_rfc_ps - 1,
        t.t_refi_ps + t.t_rfc_ps,
        t.t_refi_ps + t.t_rfc_ps + 1,
    ] {
        assert_eq!(table.check(&act, at), oracle.check(&act, at));
    }
    assert_eq!(
        table.earliest_issue_ps(&act),
        oracle.earliest_issue_ps(&act)
    );
    assert_eq!(table.earliest_issue_ps(&act), t.t_refi_ps + t.t_rfc_ps);
}

/// RefreshRow on a folded-rank bank index holds exactly that bank busy for
/// tRFM in both trackers; a sibling bank in the other folded rank is free.
#[test]
fn refresh_row_folded_rank_is_identical() {
    let t = TimingParams::ddr4_1333();
    let geometry = folded_two_rank_geometry();
    let mut table = RankTiming::new(geometry.clone(), t.clone());
    let mut oracle = OracleRankTiming::new(geometry, t.clone());
    let target = 20; // second folded rank
    table.apply(
        &DramCommand::RefreshRow {
            bank: target,
            row: 9,
        },
        0,
    );
    oracle.apply(
        &DramCommand::RefreshRow {
            bank: target,
            row: 9,
        },
        0,
    );
    let blocked = DramCommand::Activate {
        bank: target,
        row: 1,
    };
    let free = DramCommand::Activate { bank: 2, row: 1 };
    assert_eq!(
        table.earliest_issue_ps(&blocked),
        oracle.earliest_issue_ps(&blocked)
    );
    assert_eq!(table.earliest_issue_ps(&blocked), t.t_rfm_ps);
    assert_eq!(table.earliest_issue_ps(&free), 0);
    assert_eq!(oracle.earliest_issue_ps(&free), 0);
}
